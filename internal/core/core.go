// Package core assembles the stable heap (Ch. 2, 5, 7): one virtual
// address space divided into a stable area — collected by the atomic
// incremental copying collector and protected by write-ahead logging — and
// a volatile area — collected by a plain unlogged copying collector — with
// transactions, concurrent stability tracking, checkpointing, crash
// simulation, and recovery wired together.
//
// Address space layout (page 0 is reserved so that address 0 is never
// valid):
//
//	[page 1 …                )  stable semispace 0
//	[… , …                   )  stable semispace 1
//	[… , …                   )  volatile semispace 0
//	[… , …                   )  volatile semispace 1
//
// Low-level actions are indivisible, matching the paper's model in which
// context switches happen only at action boundaries (§2.1). Independent
// transactions run their actions in parallel under a sharded action latch
// (see latch.go): reads and single-page logged updates hold the stop latch
// shared (updates additionally hold one per-page writer stripe), while
// anything that moves objects or walks global state — collection work,
// stability tracking, abort, checkpoint, recovery — stops the heap by
// taking the latch exclusively.
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stableheap/internal/gc"
	"stableheap/internal/heap"
	"stableheap/internal/histcheck"
	"stableheap/internal/lock"
	"stableheap/internal/obs"
	"stableheap/internal/recovery"
	"stableheap/internal/stability"
	"stableheap/internal/storage"
	"stableheap/internal/tx"
	"stableheap/internal/vm"
	"stableheap/internal/wal"
	"stableheap/internal/word"
)

// Errors returned by heap operations.
var (
	// ErrConflict is returned when a lock cannot be acquired; the caller
	// should abort and retry the transaction.
	ErrConflict = errors.New("core: lock conflict")
	// ErrHeapFull is returned when an allocation cannot be satisfied
	// even after collection.
	ErrHeapFull = errors.New("core: heap full")
	// ErrTxDone is returned for operations on a finished transaction.
	ErrTxDone = errors.New("core: transaction already finished")
)

// Config sizes and parameterizes a stable heap.
type Config struct {
	// Dir, when set, backs the heap with real files under this directory
	// (internal/storage/filestore) instead of the simulated in-memory
	// devices: fsync-ordered page writes, a segmented on-disk log, and a
	// bounded durable-layer page cache, so the heap both survives process
	// exit and can grow far beyond RAM. Empty keeps the in-memory devices.
	// Open formats a fresh directory and recovers an existing one; see
	// OpenDir/RecoverDir for the error-returning entry points.
	Dir string
	// FileCachePages bounds the filestore's durable-layer page cache
	// (default 256). Distinct from CachePages, which bounds the vm-level
	// cache above it. Ignored when Dir is empty.
	FileCachePages int
	// PageSize in bytes (default 1024).
	PageSize int
	// StableWords is the size of each stable semispace in words
	// (default 64Ki words = 512 KiB).
	StableWords int
	// VolatileWords is the size of each volatile semispace in words
	// (default 16Ki words). Ignored when Divided is false.
	VolatileWords int
	// NurseryBytes sizes the nursery generation: a small unlogged space
	// where new volatile objects are born; minor collections copy
	// survivors into the aged semispace (or, for newly stable objects,
	// the stable area) and reset the nursery wholesale. 0 picks the
	// default — 256 KiB, an L2-cache-sized nursery in the CertiCoq
	// style, clamped to half a volatile semispace — and a negative value
	// disables the nursery. Ignored when Divided is false.
	NurseryBytes int
	// ConcurrentVGC makes full volatile collections mostly-concurrent:
	// the stop latch is held only for the flip (roots, remembered-set
	// fixes, logged LS evacuations) while the copying scan runs in
	// quanta on a collector goroutine behind a read barrier and a
	// snapshot-at-the-beginning deletion barrier. Requires Divided.
	ConcurrentVGC bool
	// ConcVGCManualScan suppresses the collector goroutine: an in-flight
	// concurrent scan advances only through StepVolatileScan and the
	// inline retirement points (the next collection, a stable flip,
	// Close). Deterministic harnesses (chaos replay) use this to pace the
	// scan from the seed instead of the goroutine scheduler, so runs stay
	// bit-identical. Meaningless without ConcurrentVGC.
	ConcVGCManualScan bool
	// ConcurrentSGC makes stable collections mostly-concurrent: the stop
	// latch is held only for the flip (the logged space swap plus root,
	// handle, undo-value and cross-area slot translation) while the
	// WAL-logged sweep runs in quanta on a collector goroutine behind a
	// transporting read barrier and a snapshot-at-the-beginning deletion
	// barrier. The scan steps stay logged and restartable, so a crash at
	// any quantum boundary recovers exactly like a crash mid-incremental
	// collection — and recovery resumes the scan concurrently. Requires
	// Incremental; the Ellis page protection is never armed in this mode
	// (the read barrier replaces it). Newly stable objects evacuated
	// while the scan runs allocate at the high end of to-space instead of
	// forcing the collection to finish.
	ConcurrentSGC bool
	// ConcSGCManualScan suppresses the stable collector goroutine: an
	// in-flight concurrent stable scan advances only through
	// StepStableScan and the inline retirement points. Deterministic
	// harnesses (chaos replay) pace the scan from the seed. Meaningless
	// without ConcurrentSGC.
	ConcSGCManualScan bool
	// Divided enables the stable/volatile split of Chapter 5. When
	// false, every object lives in the stable area and every update is
	// logged (the Chapters 3–4 configuration, used as the E9 baseline).
	Divided bool
	// Barrier selects the stable collector's read barrier (Ellis
	// default; Baker for the §3.8 variant; NoBarrier with
	// Incremental=false for the stop-the-world baseline).
	Barrier gc.Barrier
	// Incremental interleaves stable collections with mutation.
	Incremental bool
	// StepPages / StepWords are the incremental quanta.
	StepPages int
	StepWords int
	// GCTriggerFraction starts a stable collection when free space in
	// the current semispace drops below this fraction (default 0.25).
	GCTriggerFraction float64
	// CachePages caps the page cache (0 = unlimited).
	CachePages int
	// LogSegBytes is the log device's segment size.
	LogSegBytes int
	// LockWait bounds lock waits before a conflict error (0 = fail
	// fast; deadlock victims time out).
	LockWait time.Duration
	// NumRoots is the size of the stable root array (default 32).
	NumRoots int
	// DisableOpPacing stops heap operations from donating incremental
	// collection quanta; the collection then advances only through
	// read-barrier traps and explicit StepStable calls (the purely
	// trap-driven Ellis flavor; used by the barrier experiments).
	DisableOpPacing bool
	// GroupCommitWindow enables group commit (§2.2.1 footnote): commits
	// park up to this long so one log force covers the batch. Zero
	// disables (every commit forces individually).
	GroupCommitWindow time.Duration
	// GroupCommitBatch forces early once this many committers are
	// parked (default 16).
	GroupCommitBatch int
	// CopyContents makes the collector's copy records carry full object
	// images (the E14 ablation of the paper's content-free records).
	CopyContents bool
	// RecoveryWorkers is the number of page-partitioned redo shards used
	// when repeating history after a crash: 0 picks min(GOMAXPROCS, 8),
	// 1 forces sequential redo. The parallel replay is state-identical to
	// the sequential one (see DESIGN.md "Parallel recovery").
	RecoveryWorkers int
	// Trace enables the trace-event ring: collector pauses, log forces,
	// commits and recovery phases are recorded and exportable as Chrome
	// trace_event JSON (Heap.TraceJSON). Latency histograms are always on
	// regardless; tracing is the only opt-in piece.
	Trace bool
	// TraceEvents bounds the trace ring (default obs.DefaultTraceEvents);
	// the oldest events are overwritten — and counted — beyond it.
	TraceEvents int
	// LatchShards is the number of per-page writer stripes in the sharded
	// action latch (default 64; any negative value collapses to a single
	// stripe, serializing all writers — the pre-sharding behaviour).
	LatchShards int
	// NoDeadlockDetect disables the lock manager's waits-for-graph
	// deadlock detector, leaving only the LockWait timeout backstop (the
	// pre-detector policy; useful for A/B measurement).
	NoDeadlockDetect bool
	// FlightRecorder enables the crash-surviving black-box ring
	// (internal/obs): compact binary event records — tx begin/commit/abort,
	// GC flips and quanta, WAL forces, latch stalls, injected faults —
	// journaled through a dedicated log device so the pre-crash timeline is
	// readable after recovery (Heap.FlightEvents, cmd/shtrace).
	FlightRecorder bool
	// FlightRecorderEvents bounds the black-box ring (default
	// obs.DefaultBlackBoxEvents); the oldest records are overwritten.
	FlightRecorderEvents int
	// FlightJournal, when set, is the device the recorder journals to —
	// pass the same device across crash/recover cycles to accumulate the
	// timeline of every run (frames are tagged per run; obs.ReadLatest
	// separates them). Nil allocates a fresh private device. The journal
	// device is deliberately never the WAL device and is not expected to
	// be fault-wrapped: it models battery-backed recorder hardware.
	FlightJournal storage.LogDevice
	// WatchdogInterval, when positive, starts a stall-watchdog goroutine
	// that snapshots the metrics on this ticker and runs anomaly rules
	// over consecutive windows (mutator stalls far beyond p99, nursery
	// minor-collection runaway, group-commit convoys); trips count in
	// obs_watchdog_trips_total and record EvWatchdog events. Off (0) by
	// default: deterministic harnesses must not host a background
	// goroutine that perturbs scheduling.
	WatchdogInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 1024
	}
	if c.StableWords == 0 {
		c.StableWords = 64 * 1024
	}
	if c.VolatileWords == 0 {
		c.VolatileWords = 16 * 1024
	}
	if c.NumRoots == 0 {
		c.NumRoots = 32
	}
	if c.GCTriggerFraction == 0 {
		c.GCTriggerFraction = 0.25
	}
	if c.StepPages == 0 {
		c.StepPages = 1
	}
	if c.StepWords == 0 {
		c.StepWords = 128
	}
	if c.LatchShards == 0 {
		c.LatchShards = 64
	} else if c.LatchShards < 0 {
		c.LatchShards = 1
	}
	return c
}

// defaultNurseryBytes sizes the nursery to a typical L2 cache, the
// CertiCoq heuristic: minor collections then run mostly in cache.
const defaultNurseryBytes = 256 << 10

// nurseryWords resolves the configured nursery size to words (0 when the
// nursery is disabled): the default applies at 0, the size is clamped to
// half a volatile semispace (the aged space must be able to absorb a full
// nursery during a concurrent scan), and rounded down to whole pages.
func (c Config) nurseryWords() int {
	if !c.Divided || c.NurseryBytes < 0 {
		return 0
	}
	b := c.NurseryBytes
	if b == 0 {
		b = defaultNurseryBytes
	}
	if max := word.WordsToBytes(c.VolatileWords) / 2; b > max {
		b = max
	}
	if b < c.PageSize {
		b = c.PageSize
	}
	b -= b % c.PageSize
	return word.BytesToWords(b)
}

// DefaultConfig is a small divided heap with the Ellis incremental
// collector — the paper's recommended configuration.
func DefaultConfig() Config {
	return Config{Divided: true, Barrier: gc.Ellis, Incremental: true}.withDefaults()
}

// Ref is a stable reference to a heap object: a registered mutator root
// the collectors keep current as objects move. Refs belong to the
// transaction that created them.
type Ref = tx.Handle

// Heap is a stable heap instance.
type Heap struct {
	cfg    Config
	disk   storage.PageStore
	logDev storage.LogDevice
	log    *wal.Manager
	mem    *vm.Store
	h      *heap.Heap
	locks  *lock.Manager
	txm    *tx.Manager
	sgc    *gc.Collector
	vgc    *gc.VolatileCollector // nil when !Divided
	ckpt   *recovery.Checkpointer
	track  *stability.Tracker

	// The sharded action latch (latch.go): stop admits transaction
	// actions shared and heap-stopping work exclusive; shards stripe
	// writers by page; coarse mirrors sgc.Active() so every action goes
	// exclusive while a stable collection is in progress.
	stop   sync.RWMutex
	shards []sync.Mutex
	coarse atomic.Bool

	// The concurrent-collection gate (latch.go): while a mostly-
	// concurrent scan is in flight (cvgcOn for the volatile area, csgcOn
	// for the stable area), ordinary actions additionally hold gate
	// shared and the collector goroutine runs its quanta under gate
	// exclusive — so copying excludes mutators without ever taking the
	// stop latch. Both flags only transition with stop held exclusively.
	// gateHeldExcl tracks whether the current exclusive section acquired
	// the gate (single-writer under stop). scanWG joins the collector
	// goroutines on Close/Crash.
	gate         sync.RWMutex
	gateHeldExcl bool
	cvgcOn       atomic.Bool
	csgcOn       atomic.Bool
	scanWG       sync.WaitGroup

	// grayQ is the snapshot-at-the-beginning gray stack: pointer values
	// (volatile or stable) overwritten during a concurrent scan. They are
	// evacuated at the next exclusive section or scan quantum — always
	// before any abort could restore them into a scanned object.
	grayMu sync.Mutex
	grayQ  []word.Addr

	// rootObj is the current address of the stable root object (an
	// object with NumRoots pointer fields living in the stable area).
	rootObj word.Addr
	// volRootObj is the volatile root object; it does not survive
	// crashes. NilAddr when !Divided.
	volRootObj word.Addr

	// ls is the LS set: newly stable objects still at volatile
	// addresses. srem is the stable→volatile remembered set: stable-area
	// slots holding volatile pointers. nrem is the nursery remembered
	// set: aged volatile slots holding nursery pointers (stable slots
	// holding nursery pointers are covered by srem, since the nursery is
	// part of the volatile area). ls is only touched in exclusive
	// sections; srem and nrem are additionally written by concurrent
	// shared update actions (through the write-barrier hooks) and
	// rebased by the read barrier's copies, so remMu guards both.
	ls    map[word.Addr]bool
	remMu sync.Mutex
	srem  map[word.Addr]bool
	nrem  map[word.Addr]bool

	// candidates collects, per transaction, the targets of pointer
	// stores into stable state, for commit-time stability tracking.
	// Guarded by candMu: shared update actions append concurrently.
	candMu     sync.Mutex
	candidates map[word.TxID][]*tx.Handle

	// hist, when set, records every transactional action for offline
	// serializability checking (internal/histcheck). Install it with
	// SetHistoryRecorder before any concurrent use.
	hist *histcheck.Recorder

	// group batches commit forces when Config.GroupCommitWindow > 0.
	group *groupCommitter

	// met holds the heap-level latency histograms (always on); tr is the
	// optional trace ring (nil unless Config.Trace); bb/journal/wd are the
	// flight recorder, its persistence journal and the stall watchdog (all
	// nil unless Config.FlightRecorder / WatchdogInterval — and all their
	// methods are nil-safe, so instrumentation sites call unconditionally).
	met     heapMetrics
	tr      *obs.Trace
	bb      *obs.BlackBox
	journal *obs.Journal
	wd      *obs.Watchdog

	// area bounds (nurLo/nurHi are zero when the nursery is disabled)
	stableLo, stableHi word.Addr
	volLo, volHi       word.Addr
	nurLo, nurHi       word.Addr

	lastRecovery *recovery.Result

	// store is the file-backed device pair when the heap was opened with
	// Config.Dir (nil otherwise); Close closes it after the final
	// checkpoint so the files are released with everything flushed.
	store io.Closer
}

// Tx is an open transaction on a Heap.
type Tx struct {
	hp  *Heap
	t   *tx.Tx
	err error // sticky failure (conflict): only Abort is allowed
}

// Open creates a stable heap on new simulated devices — or, when
// Config.Dir is set, on real files there (formatting a fresh directory,
// recovering an existing one), panicking on filesystem errors. Callers
// that want the error use OpenDir.
func Open(cfg Config) *Heap {
	cfg = cfg.withDefaults()
	if cfg.Dir != "" {
		hp, err := OpenDir(cfg)
		if err != nil {
			panic(fmt.Sprintf("core: open %s: %v", cfg.Dir, err))
		}
		return hp
	}
	return OpenOn(cfg, storage.NewDisk(cfg.PageSize), storage.NewLog(cfg.LogSegBytes))
}

// OpenOn creates a freshly formatted stable heap on the provided devices —
// the entry point for fault-injection wrappers (internal/faultfs) and any
// other PageStore/LogDevice implementation. The devices must be empty.
func OpenOn(cfg Config, disk storage.PageStore, logDev storage.LogDevice) *Heap {
	cfg = cfg.withDefaults()
	hp := build(cfg, disk, logDev)
	hp.format()
	hp.startWatchdog()
	return hp
}

// build wires the subsystems over existing devices (no formatting).
func build(cfg Config, disk storage.PageStore, logDev storage.LogDevice) *Heap {
	log := wal.NewManager(logDev)
	mem := vm.New(vm.Config{PageSize: cfg.PageSize, CachePages: cfg.CachePages, LogFetches: true}, disk, log)
	h := heap.New(mem)
	locks := lock.NewManager(cfg.LockWait)

	locks.SetDetection(!cfg.NoDeadlockDetect)

	hp := &Heap{
		cfg: cfg, disk: disk, logDev: logDev, log: log, mem: mem, h: h, locks: locks,
		shards:     make([]sync.Mutex, cfg.LatchShards),
		ls:         make(map[word.Addr]bool),
		srem:       make(map[word.Addr]bool),
		nrem:       make(map[word.Addr]bool),
		candidates: make(map[word.TxID][]*tx.Handle),
	}

	ps := word.Addr(cfg.PageSize)
	hp.stableLo = ps
	hp.stableHi = hp.stableLo + word.Addr(word.WordsToBytes(2*cfg.StableWords))
	if cfg.Divided {
		// Keep areas page aligned.
		hp.volLo = alignUp(hp.stableHi, cfg.PageSize)
		hp.volHi = hp.volLo + word.Addr(word.WordsToBytes(2*cfg.VolatileWords))
		if nw := cfg.nurseryWords(); nw > 0 {
			hp.nurLo = alignUp(hp.volHi, cfg.PageSize)
			hp.nurHi = hp.nurLo + word.Addr(word.WordsToBytes(nw))
		}
	}

	hp.txm = tx.NewManager(log, mem, h, locks, tx.Env{
		VolatilePred:       hp.inVolatile,
		OnStableSlotWrite:  hp.onStableSlotWrite,
		OnVolatilePtrWrite: hp.onVolatilePtrWrite,
	})

	hp.sgc = gc.New(gc.Config{
		Barrier:      cfg.Barrier,
		Incremental:  cfg.Incremental,
		Atomic:       true,
		StepPages:    cfg.StepPages,
		StepWords:    cfg.StepWords,
		CopyContents: cfg.CopyContents,
	}, mem, h, log, hp.stableLo, hp.stableHi)

	if cfg.Trace {
		hp.tr = obs.NewTrace(cfg.TraceEvents)
	}
	log.SetTrace(hp.tr)
	hp.sgc.SetTrace(hp.tr)
	if cfg.FlightRecorder {
		hp.bb = obs.NewBlackBox(cfg.FlightRecorderEvents)
		jd := cfg.FlightJournal
		if jd == nil {
			jd = storage.NewLog(1 << 20)
		}
		hp.journal = obs.NewJournal(jd, hp.bb)
	}
	log.SetRecorder(hp.bb)
	// A file-backed disk records its barriers and write-back batches in
	// the same flight-recorder timeline as everything else.
	if sr, ok := disk.(interface{ SetRecorder(*obs.BlackBox) }); ok {
		sr.SetRecorder(hp.bb)
	}

	hp.ckpt = recovery.NewCheckpointer(log, mem, word.NilLSN)

	hp.sgc.SetHooks(gc.Hooks{
		ForEachRoot: hp.forEachStableRoot,
		OnCopy:      hp.onCopy,
		LockShards:  hp.lockShardsForCopy,
	})
	mem.SetTrapHandler(hp.sgc.Trap)

	if cfg.Divided {
		hp.vgc = gc.NewVolatile(mem, h, log, hp.volLo, hp.volHi)
		hp.vgc.SetTrace(hp.tr)
		if hp.nurLo != 0 {
			hp.vgc.SetNursery(hp.nurLo, hp.nurHi)
		}
		hp.vgc.SetHooks(gc.VolatileHooks{
			ForEachRoot:       hp.forEachVolatileRoot,
			StableSlots:       hp.stableSlots,
			NewlyStable:       hp.newlyStable,
			AllocStable:       hp.allocStableForMove,
			OnCopy:            hp.onCopy,
			OnMoveStable:      hp.onMoveStable,
			OnStableSlotFixed: hp.onStableSlotFixed,
		})
		hp.track = stability.New(h, hp.txm, locks, stability.Env{
			InVolatile: hp.inVolatile,
			AddLS:      func(a word.Addr) { hp.ls[a] = true },
			Forward:    hp.volLoad,
		})
	}
	if cfg.GroupCommitWindow > 0 {
		hp.group = newGroupCommitter(hp, cfg.GroupCommitWindow, cfg.GroupCommitBatch)
	}
	return hp
}

func alignUp(a word.Addr, ps int) word.Addr {
	r := uint64(a) % uint64(ps)
	if r == 0 {
		return a
	}
	return a + word.Addr(uint64(ps)-r)
}

// format bootstraps a fresh heap: the stable root object is created by a
// system bootstrap transaction, then the first checkpoint is taken and the
// master block initialized.
func (hp *Heap) format() {
	recovery.InitMaster(hp.disk)
	d := heap.NewDescriptor(0, hp.cfg.NumRoots, 0)
	addr, ok := hp.sgc.Alloc(d.SizeWords())
	if !ok {
		panic("core: stable area too small for the root object")
	}
	t := hp.txm.Begin()
	lsn := hp.txm.LogAlloc(t, addr, d)
	hp.h.SetDescriptor(addr, d, lsn)
	hp.rootObj = addr
	hp.txm.Commit(t)
	if hp.cfg.Divided {
		hp.volRootObj = hp.allocVolRootObj()
	}
	hp.Checkpoint()
	hp.ckpt.ForcePromote()
}

// allocVolRootObj creates the (crash-transient) volatile root object.
func (hp *Heap) allocVolRootObj() word.Addr {
	d := heap.NewDescriptor(0, hp.cfg.NumRoots, 0)
	a, ok := hp.vgc.Alloc(d.SizeWords())
	if !ok {
		panic("core: volatile area too small for the root object")
	}
	hp.h.SetDescriptor(a, d, word.NilLSN)
	return a
}

// --- area predicates and hooks -----------------------------------------

func (hp *Heap) inVolatile(a word.Addr) bool {
	if !hp.cfg.Divided {
		return false
	}
	if a >= hp.volLo && a < hp.volHi {
		return true
	}
	return hp.nurLo != 0 && a >= hp.nurLo && a < hp.nurHi
}

func (hp *Heap) inNursery(a word.Addr) bool {
	return hp.nurLo != 0 && a >= hp.nurLo && a < hp.nurHi
}

// volatileEnd is the exclusive upper bound of volatile addresses (used by
// checkpoints so recovery's volatile predicate covers the nursery too).
func (hp *Heap) volatileEnd() word.Addr {
	if hp.nurHi != 0 {
		return hp.nurHi
	}
	return hp.volHi
}

func (hp *Heap) inStableArea(a word.Addr) bool {
	return a >= hp.stableLo && a < hp.stableHi
}

// isStableObject reports whether updates to the object at a must follow
// the WAL protocol: it lives in the stable area, or it is a newly stable
// (AS) object still at a volatile address.
func (hp *Heap) isStableObject(a word.Addr, d heap.Descriptor) bool {
	if hp.inStableArea(a) {
		return true
	}
	return d.AS()
}

// onStableSlotWrite maintains the remembered set for pointer stores into
// stable slots (wired into the transaction manager's env). Only slots that
// physically live in the stable area belong in SRem; slots inside AS
// objects still at volatile addresses are covered by the move scan.
func (hp *Heap) onStableSlotWrite(slot word.Addr, ptrToVolatile bool) {
	if !hp.inStableArea(slot) {
		return
	}
	hp.remMu.Lock()
	if ptrToVolatile {
		hp.srem[slot] = true
	} else {
		delete(hp.srem, slot)
	}
	hp.remMu.Unlock()
}

// onCopy is every collector's copy hook: undo translations, lock rekeys,
// remembered-slot rebasing, and history-recorder variable identity follow
// the object. Besides the exclusive collection contexts, it runs from
// shared mutator actions when the mostly-concurrent read barrier copies an
// object, so the remembered sets are rebased under remMu (the transaction
// manager and lock manager lock internally).
func (hp *Heap) onCopy(from, to word.Addr, sizeWords int) {
	hp.txm.OnCopy(from, to, sizeWords)
	hp.locks.Rekey(from, to)
	if hp.hist != nil {
		hp.hist.OnMove(from, to, sizeWords)
	}
	hi := from.Add(sizeWords)
	hp.remMu.Lock()
	// srem keys are stable-area slots, so a copy whose source lies in the
	// volatile area can never overlap them; nrem keys are aged-volatile
	// slots by construction (the write barrier filters nursery-internal
	// stores, and stable slots holding nursery pointers live in srem), so
	// only aged-volatile-sourced copies sweep that map — in particular
	// stable evacuations, which a concurrent stable scan performs from
	// the mutator's read barrier, skip both sweeps. Without the guards
	// every evacuation pays an O(entries) sweep of both maps, which
	// dominates collection pauses once the remembered sets carry a few
	// hundred entries.
	if len(hp.srem) > 0 && !hp.vgc.InArea(from) {
		for slot := range hp.srem {
			if slot >= from && slot < hi {
				delete(hp.srem, slot)
				hp.srem[to+(slot-from)] = true
			}
		}
	}
	if len(hp.nrem) > 0 && hp.vgc.InArea(from) && !hp.inNursery(from) {
		for slot := range hp.nrem {
			if slot >= from && slot < hi {
				delete(hp.nrem, slot)
				hp.nrem[to+(slot-from)] = true
			}
		}
	}
	hp.remMu.Unlock()
}

// onMoveStable handles a newly stable object leaving the volatile area.
func (hp *Heap) onMoveStable(from, to word.Addr, sizeWords int) {
	delete(hp.ls, from)
	hp.onCopy(from, to, sizeWords)
}

// onStableSlotFixed maintains SRem membership for slots the volatile
// collector rewrote.
func (hp *Heap) onStableSlotFixed(slot, newPtr word.Addr, stillVolatile bool) {
	hp.remMu.Lock()
	if stillVolatile {
		hp.srem[slot] = true
	} else {
		delete(hp.srem, slot)
	}
	hp.remMu.Unlock()
}

// onVolatilePtrWrite is the volatile write barrier (wired into the
// transaction manager): it grays overwritten from-space values during a
// concurrent scan (snapshot-at-the-beginning deletion barrier) and
// registers aged slots that store nursery pointers in the nursery
// remembered set.
func (hp *Heap) onVolatilePtrWrite(slot, old, stored word.Addr) {
	if hp.cvgcOn.Load() && hp.vgc.ConcFromContains(old) {
		hp.grayMu.Lock()
		hp.grayQ = append(hp.grayQ, old)
		hp.grayMu.Unlock()
		hp.met.satbGray.Inc()
	}
	if hp.inNursery(stored) && !hp.inNursery(slot) {
		hp.remMu.Lock()
		hp.nrem[slot] = true
		hp.remMu.Unlock()
		hp.met.nurseryRem.Inc()
	}
}

// newlyStable returns the LS set sorted (the collector drains it at minor
// collections and concurrent flips; sorting keeps log contents
// deterministic for a given history).
func (hp *Heap) newlyStable() []word.Addr {
	out := make([]word.Addr, 0, len(hp.ls))
	for a := range hp.ls {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// takeNRem drains the nursery remembered set, sorted. Every collection
// that empties the nursery also resets nrem: surviving targets are
// evacuated through the returned slots, and stale entries must not dangle
// into the reset space.
func (hp *Heap) takeNRem() []word.Addr {
	hp.remMu.Lock()
	out := make([]word.Addr, 0, len(hp.nrem))
	for a := range hp.nrem {
		out = append(out, a)
	}
	if len(hp.nrem) > 0 {
		hp.nrem = make(map[word.Addr]bool)
	}
	hp.remMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// stableSlots returns the remembered set sorted (volatile-GC roots).
func (hp *Heap) stableSlots() []word.Addr {
	out := make([]word.Addr, 0, len(hp.srem))
	for a := range hp.srem {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// allocStableForMove reserves stable space for an evacuated object; the
// caller (volatile collection) verified capacity beforehand.
func (hp *Heap) allocStableForMove(sizeWords int) word.Addr {
	a, ok := hp.sgc.AllocForMove(sizeWords)
	if !ok {
		panic("core: stable area exhausted during evacuation (ensureStableSpace bug)")
	}
	return a
}

// forEachStableRoot enumerates the stable collector's roots at a flip:
// transaction handles, undo-information pointer values, locked objects,
// the volatile root object's slots and every volatile-area slot that
// points into the stable area (the paper's stated cost of dividing the
// heap: the volatile area is scanned as a root set).
func (hp *Heap) forEachStableRoot(visit func(get func() word.Addr, set func(word.Addr))) {
	hp.txm.ForEachHandle(visit)
	hp.txm.ForEachUndoRoot(visit)
	for _, a := range hp.locks.LockedAddrs() {
		a := a
		// Locked objects are copied so their lock-table keys stay
		// valid; the rekey itself happens in the OnCopy hook.
		visit(func() word.Addr { return a }, func(word.Addr) {})
	}
	if hp.cfg.Divided {
		hp.forEachVolatileSlot(visit)
	}
}

// forEachVolatileSlot walks every object in the volatile area — the
// current semispace's copy region and its high-end allocation region
// (populated by allocations made during a concurrent scan), plus the
// nursery — and visits its pointer slots (unlogged rewrites: volatile
// state).
func (hp *Heap) forEachVolatileSlot(visit func(get func() word.Addr, set func(word.Addr))) {
	walk := func(lo, hi word.Addr) {
		for a := lo; a < hi; {
			d := hp.h.Descriptor(a)
			for i := 0; i < d.NPtrs(); i++ {
				slot := a + word.Addr(heap.PtrOffset(i))
				visit(
					func() word.Addr { return word.Addr(hp.mem.ReadWord(slot)) },
					func(na word.Addr) { hp.mem.WriteWord(slot, uint64(na), word.NilLSN) },
				)
			}
			a = a.Add(d.SizeWords())
		}
	}
	sp := hp.vgc.Current()
	walk(sp.Lo, sp.CopyPtr)
	walk(sp.AllocPtr, sp.Hi)
	if n := hp.vgc.Nursery(); n != nil {
		walk(n.Lo, n.CopyPtr)
	}
}

// forEachVolatileRoot enumerates the volatile collector's roots: the
// volatile root object pointer, transaction handles, and undo-information
// pointer values.
func (hp *Heap) forEachVolatileRoot(visit func(get func() word.Addr, set func(word.Addr))) {
	visit(func() word.Addr { return hp.volRootObj }, func(a word.Addr) { hp.volRootObj = a })
	hp.txm.ForEachHandle(visit)
	hp.txm.ForEachUndoRoot(visit)
}

// --- collection scheduling ----------------------------------------------

// maybeStartStableGC flips when free stable space runs low. While a
// concurrent volatile scan is in flight the trigger is deferred: a stable
// flip scans the volatile area as roots, and live objects still in the
// volatile from-space would be missed. finishConcurrentLocked re-checks
// the trigger when the scan retires.
func (hp *Heap) maybeStartStableGC() {
	if hp.sgc.Active() || hp.cvgcOn.Load() {
		return
	}
	if float64(hp.sgc.FreeWords()) >= hp.cfg.GCTriggerFraction*float64(hp.cfg.StableWords) {
		return
	}
	hp.startStableGC()
}

func (hp *Heap) startStableGC() {
	// A stable flip walks the volatile area as a root set; the walk only
	// sees the current semispace and nursery, so an in-flight concurrent
	// scan (with live objects still in volatile from-space) must retire
	// first.
	hp.finishConcurrentLocked()
	if hp.cfg.ConcurrentSGC && hp.cfg.Incremental {
		hp.rootObj = hp.sgc.StartConcurrentCollection(hp.rootObj)
		hp.bb.Record(obs.EvGCFlip, 0, uint64(hp.sgc.Stats().Collections), 1)
		hp.startStableConcScan()
		return
	}
	hp.rootObj = hp.sgc.StartCollection(hp.rootObj)
	hp.bb.Record(obs.EvGCFlip, 0, uint64(hp.sgc.Stats().Collections), 0)
}

// stepStableGC advances an active incremental collection by one quantum
// (called from heap operations: the paper's "the mutator calls the
// collector to do some work", §3.2). A concurrent collection is paced by
// its collector goroutine and the commit assist instead — operations must
// not scan from shared sections.
func (hp *Heap) stepStableGC() {
	if !hp.cfg.DisableOpPacing && hp.sgc.Active() && !hp.csgcOn.Load() {
		hp.sgc.Step()
	}
}

// lsWords sums the sizes of pending newly stable objects.
func (hp *Heap) lsWords() int {
	total := 0
	for a := range hp.ls {
		total += hp.h.Descriptor(a).SizeWords()
	}
	return total
}

// ensureStableSpace guarantees the stable allocator can absorb needWords
// (finishing or running a collection if necessary).
func (hp *Heap) ensureStableSpace(needWords int) error {
	if hp.sgc.FreeWords() >= needWords {
		return nil
	}
	if hp.sgc.Active() {
		hp.finishStableGCLocked()
	} else {
		hp.startStableGC()
		hp.finishStableGCLocked()
	}
	if hp.sgc.FreeWords() < needWords {
		return ErrHeapFull
	}
	return nil
}

// collectVolatile runs a volatile collection, first guaranteeing stable
// space for the pending LS moves. With ConcurrentVGC it performs only the
// stop-the-world flip and hands the copying scan to a collector goroutine;
// otherwise (and whenever the nursery cannot be emptied first) it falls
// back to the original stop-the-world collection, after which the LS set
// is cleared (dead entries died with the collection).
func (hp *Heap) collectVolatile() error {
	// One volatile collection at a time: a scan still in flight retires
	// inline before the next one starts.
	hp.finishConcurrentLocked()
	if err := hp.ensureStableSpace(hp.lsWords()); err != nil {
		return err
	}
	if hp.sgc.Active() && !hp.sgc.ConcurrentActive() {
		// Policy: a stop-the-world or incremental stable collection is
		// quiescent during a volatile collection (moves allocate at the
		// stable copy frontier). A *concurrent* stable collection keeps
		// running: LS moves allocate at the high end of to-space, which
		// the scan never visits, so finishing it here would reintroduce
		// exactly the stall this mode removes.
		hp.sgc.Finish()
	}
	if hp.cfg.ConcurrentVGC {
		// The flip requires an empty nursery (the concurrent scan never
		// visits it): run a minor collection first when possible.
		if hp.vgc.NurseryUsedWords() > 0 && hp.vgc.CanMinor() {
			hp.vgc.CollectNursery(hp.takeNRem())
		}
		if hp.vgc.NurseryUsedWords() == 0 {
			hp.takeNRem() // stale entries must not dangle across the flip
			hp.vgc.StartConcurrent()
			hp.bb.SetGCEpoch(hp.vgc.Epoch())
			hp.bb.Record(obs.EvVGCFlip, 0, hp.vgc.Epoch(), 1)
			hp.startConcurrentScan()
			return nil
		}
		// Nursery could not be emptied (aged space too full): the full
		// stop-the-world collection below absorbs it.
	}
	// The stop-the-world collection empties the nursery and rewrites every
	// live slot during its Cheney scan, so the nursery remembered set is
	// dead weight: drain it up front (it is discarded either way, and no
	// mutator can repopulate it under the exclusive latch) rather than
	// have the copy hook rebase entries throughout the collection.
	hp.takeNRem()
	hp.vgc.Collect()
	hp.bb.SetGCEpoch(hp.vgc.Epoch())
	hp.bb.Record(obs.EvVGCFlip, 0, hp.vgc.Epoch(), 0)
	hp.ls = make(map[word.Addr]bool)
	// Evacuations consumed stable space; if it is running low, start an
	// incremental stable collection now so it finishes before the space
	// is needed (rather than a forced stop-the-world later).
	hp.maybeStartStableGC()
	return nil
}

// nurseryLSWords sums the sizes of pending newly stable objects that live
// in the nursery (the stable space a minor collection needs).
func (hp *Heap) nurseryLSWords() int {
	total := 0
	for a := range hp.ls {
		if hp.inNursery(a) {
			total += hp.h.Descriptor(a).SizeWords()
		}
	}
	return total
}

// collectNursery runs a minor collection (falling back to a full volatile
// collection when the aged space cannot absorb the nursery), first
// guaranteeing stable space for the nursery's pending LS moves.
func (hp *Heap) collectNursery() error {
	if !hp.vgc.CanMinor() {
		return hp.collectVolatile()
	}
	if need := hp.nurseryLSWords(); need > 0 {
		if hp.sgc.FreeWords() < need {
			// Growing stable space means stable-GC work, which must
			// not overlap a concurrent scan.
			hp.finishConcurrentLocked()
			if err := hp.ensureStableSpace(need); err != nil {
				return err
			}
		}
		if hp.sgc.Active() && !hp.sgc.ConcurrentActive() {
			// A stop-the-world or incremental stable collection is
			// quiescent during LS moves; a concurrent one keeps running
			// (nursery survivors that are already LS members promote
			// straight into to-space's high end without stalling on the
			// scan).
			hp.sgc.Finish()
		}
	}
	usedBefore := hp.vgc.NurseryUsedWords()
	promotedBefore := hp.vgc.Stats().PromotedWords
	hp.vgc.CollectNursery(hp.takeNRem())
	hp.bb.Record(obs.EvMinorGC, 0,
		uint64(hp.vgc.Stats().PromotedWords-promotedBefore), uint64(usedBefore))
	hp.maybeStartStableGC()
	// Proactive pacing: a minor collection can promote up to one nursery
	// limit of words, and CanMinor fails once aged free space drops below
	// that — the stop-the-world fallback at exactly the moment pressure
	// peaks. Starting the full collection while two minors of headroom
	// remain lets the flip take the concurrent path (the nursery is empty
	// right now) and gives the scan a whole minor interval to finish.
	if hp.cfg.ConcurrentVGC && !hp.vgc.ConcurrentActive() &&
		hp.vgc.FreeWords() < 2*hp.vgc.NurseryLimitWords() {
		return hp.collectVolatile()
	}
	return nil
}

// --- public transaction API ----------------------------------------------

// Begin starts a transaction. A Tx is owned by one goroutine; different
// transactions may run concurrently.
func (hp *Heap) Begin() *Tx {
	excl := hp.rlock()
	defer hp.runlock(excl)
	t := &Tx{hp: hp, t: hp.txm.Begin()}
	if hp.hist != nil {
		hp.hist.Begin(t.t.ID())
	}
	hp.bb.Record(obs.EvTxBegin, uint64(t.t.ID()), 0, 0)
	return t
}

// SetHistoryRecorder installs a histcheck recorder that observes every
// begin, read, write, commit and abort (and follows objects across
// collector moves). Install before any concurrent use; pass nil to detach.
func (hp *Heap) SetHistoryRecorder(r *histcheck.Recorder) {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	hp.hist = r
}

// fail records a sticky conflict error.
func (t *Tx) fail(err error) error {
	t.err = err
	return err
}

// ok verifies the transaction can run another action.
func (t *Tx) ok() error {
	if t.t.Status() != tx.Active {
		return ErrTxDone
	}
	return t.err
}

// Err returns the sticky error, if any.
func (t *Tx) Err() error { return t.err }

// ID returns the transaction id.
func (t *Tx) ID() word.TxID { return t.t.ID() }

// lockAddr acquires a lock on the object named by read(), mapping
// timeouts and deadlock aborts to ErrConflict. The address is read and the
// lock try-acquired atomically under the action latch (so the lock table
// only ever names current addresses and a flip's Rekey never collides with
// a stale optimistic entry); on contention the transaction waits for
// availability *outside* the latch — without holding anything — and
// retries, because the holder may need the latch to finish its work. While
// blocked the transaction is registered in the lock manager's waits-for
// graph; if its wait closes a cycle and it is chosen victim, WaitFree
// returns ErrDeadlock and the transaction fails fast with ErrConflict
// (aborting it releases its locks and breaks the cycle). A lock held when
// the object later moves follows it automatically: the collector rekeys
// the table on every copy.
func (t *Tx) lockAddr(read func() word.Addr, m lock.Mode) error {
	hp := t.hp
	// Lock-wait timing starts lazily on the first contention: the
	// uncontended fast path takes no clock readings.
	var waitStart, deadline time.Time
	for {
		var a word.Addr
		var err error
		func() {
			// Deferred unlock: read() can fault on a wrapped device
			// (internal/faultfs) and the latch must not leak with it.
			excl := hp.rlock()
			defer hp.runlock(excl)
			a = read()
			err = hp.locks.TryAcquire(t.t.ID(), a, m)
		}()
		if err == nil {
			if !waitStart.IsZero() {
				hp.met.lockWait.Since(waitStart)
			}
			return nil
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		if hp.cfg.LockWait == 0 {
			hp.met.lockWait.Since(waitStart)
			return t.fail(ErrConflict)
		}
		now := time.Now()
		if deadline.IsZero() {
			deadline = now.Add(hp.cfg.LockWait)
		} else if now.After(deadline) {
			hp.met.lockWait.Since(waitStart)
			return t.fail(ErrConflict)
		}
		if werr := hp.locks.WaitFree(t.t.ID(), a, m, deadline.Sub(now)); werr != nil {
			hp.met.lockWait.Since(waitStart)
			return t.fail(ErrConflict)
		}
	}
}

// lockRef is lockAddr over a registered handle.
func (t *Tx) lockRef(r *Ref, m lock.Mode) error {
	return t.lockAddr(r.Addr, m)
}

// Alloc creates an object with nptrs pointer fields (nil) and ndata zero
// data words, returning a registered reference. New objects are volatile
// (divided mode) or stable (all-stable mode).
func (t *Tx) Alloc(typeID uint16, nptrs, ndata int) (*Ref, error) {
	if err := t.ok(); err != nil {
		return nil, err
	}
	hp := t.hp
	if hp.journal != nil {
		defer hp.flushOnPanic()
	}
	// Allocation bumps a collector frontier and may trigger a collection:
	// always an exclusive action.
	hp.lockExclusive()
	defer hp.unlockExclusive()
	d := heap.NewDescriptor(typeID, nptrs, ndata)
	size := d.SizeWords()
	var addr word.Addr
	if hp.cfg.Divided {
		// New volatile objects are born in the nursery when one is
		// configured and the object fits; a full nursery triggers a
		// minor collection. Oversized objects and nursery overflow that
		// a minor cannot fix go to the aged semispace.
		var a word.Addr
		var ok bool
		if hp.vgc.NurseryFits(size) {
			if a, ok = hp.vgc.AllocNursery(size); !ok {
				if err := hp.collectNursery(); err != nil {
					return nil, t.fail(err)
				}
				a, ok = hp.vgc.AllocNursery(size)
			}
		}
		if !ok {
			if a, ok = hp.vgc.Alloc(size); !ok {
				if err := hp.collectVolatile(); err != nil {
					return nil, t.fail(err)
				}
				if a, ok = hp.vgc.Alloc(size); !ok {
					return nil, t.fail(ErrHeapFull)
				}
			}
		}
		addr = a
		hp.h.SetDescriptor(addr, d, word.NilLSN)
		hp.zeroObject(addr, d, word.NilLSN)
	} else {
		hp.maybeStartStableGC()
		a, ok := hp.sgc.Alloc(size)
		if !ok {
			if err := hp.ensureStableSpace(size); err != nil {
				return nil, t.fail(err)
			}
			if a, ok = hp.sgc.Alloc(size); !ok {
				return nil, t.fail(ErrHeapFull)
			}
		}
		addr = a
		lsn := hp.txm.LogAlloc(t.t, addr, d)
		hp.h.SetDescriptor(addr, d, lsn)
		hp.zeroObject(addr, d, lsn)
	}
	hp.stepStableGC()
	return hp.txm.Register(t.t, addr), nil
}

// zeroObject clears an object's fields (allocation initializes to
// nil/zero).
func (hp *Heap) zeroObject(addr word.Addr, d heap.Descriptor, lsn word.LSN) {
	n := word.WordsToBytes(d.SizeWords() - 1)
	if n > 0 {
		hp.mem.WriteBytes(addr.Add(1), make([]byte, n), lsn)
	}
}

// descriptorOf reads an object's descriptor through the read barrier.
func (hp *Heap) descriptorOf(a word.Addr) heap.Descriptor {
	hp.mem.EnsureAccessible(a, word.WordSize)
	return hp.h.Descriptor(a)
}

// Ptr reads pointer field i of the referenced object, returning a new
// registered reference (nil Ref for a nil pointer).
func (t *Tx) Ptr(r *Ref, i int) (*Ref, error) {
	if err := t.ok(); err != nil {
		return nil, err
	}
	if err := t.lockRef(r, lock.Read); err != nil {
		return nil, err
	}
	hp := t.hp
	excl := hp.rlock()
	defer hp.runlock(excl)
	a := r.Addr()
	d := hp.descriptorOf(a)
	if i < 0 || i >= d.NPtrs() {
		return nil, fmt.Errorf("core: pointer index %d out of range [0,%d)", i, d.NPtrs())
	}
	slot := a + word.Addr(heap.PtrOffset(i))
	hp.mem.EnsureAccessible(slot, word.WordSize)
	p := word.Addr(hp.mem.ReadWord(slot))
	p = hp.sgc.BarrierLoad(p) // Baker-mode transport
	p = hp.stableLoad(p)      // mostly-concurrent stable transport
	p = hp.volLoad(p)         // mostly-concurrent volatile transport
	if hp.hist != nil {
		hp.hist.Read(t.t.ID(), a)
	}
	hp.stepStableGC()
	if p.IsNil() {
		return nil, nil
	}
	return hp.txm.Register(t.t, p), nil
}

// Data reads data word j of the referenced object.
func (t *Tx) Data(r *Ref, j int) (uint64, error) {
	if err := t.ok(); err != nil {
		return 0, err
	}
	if err := t.lockRef(r, lock.Read); err != nil {
		return 0, err
	}
	hp := t.hp
	excl := hp.rlock()
	defer hp.runlock(excl)
	a := r.Addr()
	d := hp.descriptorOf(a)
	if j < 0 || j >= d.NData() {
		return 0, fmt.Errorf("core: data index %d out of range [0,%d)", j, d.NData())
	}
	slot := a + word.Addr(heap.DataOffset(d.NPtrs(), j))
	hp.mem.EnsureAccessible(slot, word.WordSize)
	v := hp.mem.ReadWord(slot)
	if hp.hist != nil {
		hp.hist.Read(t.t.ID(), a)
	}
	hp.stepStableGC()
	return v, nil
}

// SetPtr stores val (which may be nil) into pointer field i.
func (t *Tx) SetPtr(r *Ref, i int, val *Ref) error {
	if err := t.ok(); err != nil {
		return err
	}
	if err := t.lockRef(r, lock.Write); err != nil {
		return err
	}
	hp := t.hp
	excl := hp.rlock()
	defer hp.runlock(excl)
	a := r.Addr()
	d := hp.descriptorOf(a)
	if i < 0 || i >= d.NPtrs() {
		return fmt.Errorf("core: pointer index %d out of range [0,%d)", i, d.NPtrs())
	}
	var v word.Addr
	if val != nil {
		v = val.Addr()
	}
	slot := a + word.Addr(heap.PtrOffset(i))
	hp.mem.EnsureAccessible(slot, word.WordSize)
	unlock := hp.lockShard(excl, slot)
	hp.writeWordAction(t, a, d, slot, uint64(v), true)
	unlock()
	// A volatile target stored into stable state is a stability
	// candidate for commit-time tracking.
	if hp.cfg.Divided && val != nil && hp.isStableObject(a, d) && hp.inVolatile(v) {
		h := hp.txm.Register(t.t, v)
		hp.candMu.Lock()
		hp.candidates[t.t.ID()] = append(hp.candidates[t.t.ID()], h)
		hp.candMu.Unlock()
	}
	if hp.hist != nil {
		hp.hist.Write(t.t.ID(), a)
	}
	hp.stepStableGC()
	return nil
}

// SetData stores v into data word j.
func (t *Tx) SetData(r *Ref, j int, v uint64) error {
	if err := t.ok(); err != nil {
		return err
	}
	if err := t.lockRef(r, lock.Write); err != nil {
		return err
	}
	hp := t.hp
	excl := hp.rlock()
	defer hp.runlock(excl)
	a := r.Addr()
	d := hp.descriptorOf(a)
	if j < 0 || j >= d.NData() {
		return fmt.Errorf("core: data index %d out of range [0,%d)", j, d.NData())
	}
	slot := a + word.Addr(heap.DataOffset(d.NPtrs(), j))
	hp.mem.EnsureAccessible(slot, word.WordSize)
	unlock := hp.lockShard(excl, slot)
	hp.writeWordAction(t, a, d, slot, v, false)
	unlock()
	if hp.hist != nil {
		hp.hist.Write(t.t.ID(), a)
	}
	hp.stepStableGC()
	return nil
}

// writeWordAction dispatches a word store to the logged or unlogged path.
// During a concurrent stable scan it is also the snapshot-at-the-beginning
// deletion barrier for stable pointer slots: the overwritten value is
// grayed before the update, so a from-space target deleted from an
// unscanned (gray) object is still evacuated — and an abort restoring the
// old value through the undo translation table lands on the evacuated
// copy, never a from-space address.
func (hp *Heap) writeWordAction(t *Tx, obj word.Addr, d heap.Descriptor, slot word.Addr, v uint64, isPtr bool) {
	var buf [word.WordSize]byte
	word.PutWord(buf[:], 0, v)
	if hp.isStableObject(obj, d) {
		if isPtr && hp.csgcOn.Load() {
			if old := word.Addr(hp.mem.ReadWord(slot)); hp.sgc.ConcFromContains(old) {
				hp.grayMu.Lock()
				hp.grayQ = append(hp.grayQ, old)
				hp.grayMu.Unlock()
				hp.met.satbGray.Inc()
			}
		}
		hp.txm.Update(t.t, obj, slot, buf[:], isPtr)
	} else {
		hp.txm.VolatileWrite(t.t, slot, buf[:], isPtr)
	}
}

// AddData atomically adds delta (wrapping) to data word j — the logical
// update of §2.2.4: no before-image is logged, and its undo is the negated
// delta applied wherever the object lives, so counters and balances cost a
// third of a physical update's log traffic. Volatile objects fall back to
// the ordinary in-memory-undo path.
func (t *Tx) AddData(r *Ref, j int, delta uint64) error {
	if err := t.ok(); err != nil {
		return err
	}
	if err := t.lockRef(r, lock.Write); err != nil {
		return err
	}
	hp := t.hp
	excl := hp.rlock()
	defer hp.runlock(excl)
	a := r.Addr()
	d := hp.descriptorOf(a)
	if j < 0 || j >= d.NData() {
		return fmt.Errorf("core: data index %d out of range [0,%d)", j, d.NData())
	}
	slot := a + word.Addr(heap.DataOffset(d.NPtrs(), j))
	hp.mem.EnsureAccessible(slot, word.WordSize)
	unlock := hp.lockShard(excl, slot)
	if hp.isStableObject(a, d) {
		hp.txm.UpdateLogical(t.t, a, slot, delta)
	} else {
		cur := hp.mem.ReadWord(slot)
		buf := make([]byte, word.WordSize)
		word.PutWord(buf, 0, cur+delta)
		hp.txm.VolatileWrite(t.t, slot, buf, false)
	}
	unlock()
	if hp.hist != nil {
		hp.hist.ReadWrite(t.t.ID(), a)
	}
	hp.stepStableGC()
	return nil
}

// Shape returns the referenced object's type id, pointer count and data
// count.
func (t *Tx) Shape(r *Ref) (typeID uint16, nptrs, ndata int, err error) {
	if err := t.ok(); err != nil {
		return 0, 0, 0, err
	}
	if err := t.lockRef(r, lock.Read); err != nil {
		return 0, 0, 0, err
	}
	hp := t.hp
	excl := hp.rlock()
	defer hp.runlock(excl)
	d := hp.descriptorOf(r.Addr())
	return d.TypeID(), d.NPtrs(), d.NData(), nil
}

// Root returns stable root slot i (nil Ref if unset).
func (t *Tx) Root(i int) (*Ref, error) {
	if err := t.ok(); err != nil {
		return nil, err
	}
	hp := t.hp
	if err := t.lockAddr(func() word.Addr { return hp.rootObj }, lock.Read); err != nil {
		return nil, err
	}
	excl := hp.rlock()
	defer hp.runlock(excl)
	if i < 0 || i >= hp.cfg.NumRoots {
		return nil, fmt.Errorf("core: root index %d out of range", i)
	}
	slot := hp.rootObj + word.Addr(heap.PtrOffset(i))
	hp.mem.EnsureAccessible(slot, word.WordSize)
	p := word.Addr(hp.mem.ReadWord(slot))
	p = hp.sgc.BarrierLoad(p)
	p = hp.stableLoad(p)
	p = hp.volLoad(p)
	if hp.hist != nil {
		hp.hist.Read(t.t.ID(), hp.rootObj)
	}
	hp.stepStableGC()
	if p.IsNil() {
		return nil, nil
	}
	return hp.txm.Register(t.t, p), nil
}

// SetRoot stores val into stable root slot i: this is how objects become
// reachable from stable state.
func (t *Tx) SetRoot(i int, val *Ref) error {
	if err := t.ok(); err != nil {
		return err
	}
	hp := t.hp
	if err := t.lockAddr(func() word.Addr { return hp.rootObj }, lock.Write); err != nil {
		return err
	}
	excl := hp.rlock()
	defer hp.runlock(excl)
	if i < 0 || i >= hp.cfg.NumRoots {
		return fmt.Errorf("core: root index %d out of range", i)
	}
	var v word.Addr
	if val != nil {
		v = val.Addr()
	}
	d := hp.h.Descriptor(hp.rootObj)
	slot := hp.rootObj + word.Addr(heap.PtrOffset(i))
	hp.mem.EnsureAccessible(slot, word.WordSize)
	unlock := hp.lockShard(excl, slot)
	hp.writeWordAction(t, hp.rootObj, d, slot, uint64(v), true)
	unlock()
	if hp.cfg.Divided && val != nil && hp.inVolatile(v) {
		h := hp.txm.Register(t.t, v)
		hp.candMu.Lock()
		hp.candidates[t.t.ID()] = append(hp.candidates[t.t.ID()], h)
		hp.candMu.Unlock()
	}
	if hp.hist != nil {
		hp.hist.Write(t.t.ID(), hp.rootObj)
	}
	hp.stepStableGC()
	return nil
}

// VolRoot returns volatile root slot i. Volatile roots do not survive
// crashes.
func (t *Tx) VolRoot(i int) (*Ref, error) {
	if err := t.ok(); err != nil {
		return nil, err
	}
	hp := t.hp
	if !hp.cfg.Divided {
		return nil, errors.New("core: volatile roots need a divided heap")
	}
	excl := hp.rlock()
	defer hp.runlock(excl)
	if i < 0 || i >= hp.cfg.NumRoots {
		return nil, fmt.Errorf("core: root index %d out of range", i)
	}
	p := word.Addr(hp.mem.ReadWord(hp.volRootObj + word.Addr(heap.PtrOffset(i))))
	p = hp.volLoad(p)
	if p.IsNil() {
		return nil, nil
	}
	return hp.txm.Register(t.t, p), nil
}

// SetVolRoot stores val into volatile root slot i (unlogged; undone on
// abort).
func (t *Tx) SetVolRoot(i int, val *Ref) error {
	if err := t.ok(); err != nil {
		return err
	}
	hp := t.hp
	if !hp.cfg.Divided {
		return errors.New("core: volatile roots need a divided heap")
	}
	excl := hp.rlock()
	defer hp.runlock(excl)
	if i < 0 || i >= hp.cfg.NumRoots {
		return fmt.Errorf("core: root index %d out of range", i)
	}
	var v word.Addr
	if val != nil {
		v = val.Addr()
	}
	buf := make([]byte, word.WordSize)
	word.PutWord(buf, 0, uint64(v))
	slot := hp.volRootObj + word.Addr(heap.PtrOffset(i))
	unlock := hp.lockShard(excl, slot)
	hp.txm.VolatileWrite(t.t, slot, buf, true)
	unlock()
	return nil
}

// Commit runs stability tracking for the transaction's newly reachable
// volatile objects, then writes and forces the commit record (through the
// group committer when enabled, so one force covers a batch). On a
// tracking conflict the transaction is aborted and ErrConflict returned.
//
// Routing: a plain commit — no sticky error, not prepared, no stability
// candidates — runs under the shared latch, so independent transactions
// commit in parallel and the group committer's force is the only shared
// resource. Tracking (which moves object images into the log and mutates
// the LS set), failed commits (undo writes anywhere), and 2PC commits take
// the exclusive path.
func (t *Tx) Commit() error {
	if t.t.Status() != tx.Active {
		return ErrTxDone
	}
	hp := t.hp
	if hp.journal != nil {
		defer hp.flushOnPanic()
	}
	start := time.Now()
	// Candidates for THIS transaction are only appended by its own
	// goroutine, so the peek is stable for the rest of the commit.
	hp.candMu.Lock()
	nCand := len(hp.candidates[t.t.ID()])
	hp.candMu.Unlock()
	if t.err != nil || t.t.Prepared() || (hp.track != nil && nCand > 0) {
		return t.commitExclusive(start)
	}
	// The latched sections use deferred unlocks: commit touches the log
	// device, which a fault-injection wrapper can fail with a typed panic,
	// and the latch must unwind with it.
	var parked word.LSN
	err := func() error {
		excl := hp.rlock()
		defer hp.runlock(excl)
		if hp.group == nil {
			hp.txm.Commit(t.t)
			if hp.hist != nil {
				hp.hist.Commit(t.t.ID())
			}
			hp.ckpt.Promote()
			return nil
		}
		// Group commit: append the commit record here, park outside the
		// latch until a shared force covers it, then finish. Locks stay
		// held throughout, so isolation is unchanged.
		parked = hp.txm.PrepareCommit(t.t)
		return nil
	}()
	if err != nil {
		return err
	}
	if hp.group != nil {
		hp.group.waitDurable(parked)
		func() {
			excl := hp.rlock()
			defer hp.runlock(excl)
			hp.txm.FinishCommit(t.t)
			if hp.hist != nil {
				hp.hist.Commit(t.t.ID())
			}
		}()
	}
	d := time.Since(start)
	hp.met.txCommit.Observe(uint64(d))
	hp.tr.Complete("tx", "commit", start, d)
	hp.bb.Record(obs.EvTxCommit, uint64(t.t.ID()), uint64(d), 0)
	hp.assistVolatileScan()
	hp.assistStableScan()
	return nil
}

// commitExclusive is the stop-the-heap commit path: stability tracking,
// sticky-error aborts, and prepared (2PC) commits.
func (t *Tx) commitExclusive(start time.Time) error {
	hp := t.hp
	var parked word.LSN
	committed := false
	err := func() error {
		hp.lockExclusive()
		defer hp.unlockExclusive()
		if t.err == nil && hp.track != nil && !t.t.Prepared() {
			if err := hp.track.Track(t.t, hp.takeCandidates(t.t.ID())); err != nil {
				hp.txm.Abort(t.t)
				if hp.hist != nil {
					hp.hist.Abort(t.t.ID())
				}
				hp.met.txConflict.Since(start)
				hp.bb.Record(obs.EvTxConflict, uint64(t.t.ID()), uint64(time.Since(start)), 0)
				return t.fail(ErrConflict)
			}
		}
		hp.takeCandidates(t.t.ID())
		if t.err != nil {
			hp.txm.Abort(t.t)
			if hp.hist != nil {
				hp.hist.Abort(t.t.ID())
			}
			hp.met.txAbort.Since(start)
			hp.bb.Record(obs.EvTxAbort, uint64(t.t.ID()), 0, 0)
			return t.err
		}
		if hp.group == nil {
			hp.txm.Commit(t.t)
			if hp.hist != nil {
				hp.hist.Commit(t.t.ID())
			}
			hp.ckpt.Promote()
			committed = true
			return nil
		}
		parked = hp.txm.PrepareCommit(t.t)
		return nil
	}()
	if err != nil {
		return err
	}
	if !committed {
		hp.group.waitDurable(parked)
		func() {
			excl := hp.rlock()
			defer hp.runlock(excl)
			hp.txm.FinishCommit(t.t)
			if hp.hist != nil {
				hp.hist.Commit(t.t.ID())
			}
		}()
	}
	d := time.Since(start)
	hp.met.txCommit.Observe(uint64(d))
	hp.tr.Complete("tx", "commit", start, d)
	hp.bb.Record(obs.EvTxCommit, uint64(t.t.ID()), uint64(d), 0)
	hp.assistVolatileScan()
	hp.assistStableScan()
	return nil
}

// takeCandidates removes and returns the transaction's pending stability
// candidates.
func (hp *Heap) takeCandidates(id word.TxID) []*tx.Handle {
	hp.candMu.Lock()
	defer hp.candMu.Unlock()
	c := hp.candidates[id]
	delete(hp.candidates, id)
	return c
}

// Prepare runs stability tracking and writes a forced prepare record: the
// participant side of two-phase commit. The transaction's effects are then
// durable but undecided — locks stay held, and if the system crashes the
// transaction is restored in-doubt at recovery, awaiting ResolveCommit or
// ResolveAbort (the coordinator's decision). After Prepare only Commit or
// Abort are legal.
func (t *Tx) Prepare() error {
	if t.t.Status() != tx.Active {
		return ErrTxDone
	}
	hp := t.hp
	if hp.journal != nil {
		defer hp.flushOnPanic()
	}
	hp.lockExclusive()
	defer hp.unlockExclusive()
	if t.err == nil && hp.track != nil {
		if err := hp.track.Track(t.t, hp.takeCandidates(t.t.ID())); err != nil {
			hp.txm.Abort(t.t)
			if hp.hist != nil {
				hp.hist.Abort(t.t.ID())
			}
			return t.fail(ErrConflict)
		}
	}
	hp.takeCandidates(t.t.ID())
	if t.err != nil {
		hp.txm.Abort(t.t)
		if hp.hist != nil {
			hp.hist.Abort(t.t.ID())
		}
		return t.err
	}
	hp.txm.Prepare(t.t)
	hp.ckpt.Promote()
	return nil
}

// Abort rolls the transaction back.
func (t *Tx) Abort() error {
	if t.t.Status() != tx.Active {
		return ErrTxDone
	}
	hp := t.hp
	if hp.journal != nil {
		defer hp.flushOnPanic()
	}
	start := time.Now()
	// Abort undoes updates in place, anywhere in the heap: exclusive.
	hp.lockExclusive()
	defer hp.unlockExclusive()
	hp.takeCandidates(t.t.ID())
	hp.txm.Abort(t.t)
	if hp.hist != nil {
		hp.hist.Abort(t.t.ID())
	}
	hp.met.txAbort.Since(start)
	hp.bb.Record(obs.EvTxAbort, uint64(t.t.ID()), 0, 0)
	return nil
}
