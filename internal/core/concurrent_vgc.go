package core

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"

	"stableheap/internal/obs"
	"stableheap/internal/storage"
	"stableheap/internal/word"
)

// The mostly-concurrent volatile collection driver (Config.ConcurrentVGC).
//
// collectVolatile performs the stop-the-world flip (gc.StartConcurrent:
// roots, remembered-set fixes, every LS move — all the logged work) and
// then hands the unlogged copying scan to a goroutine started here. The
// scanner runs one quantum at a time under the gate held exclusively, so
// mutators are never blocked for longer than one quantum and the stop
// latch is not involved at all. Any exclusive section that needs the scan
// gone (a stable flip, the next volatile collection, Close) retires it
// inline via finishConcurrentLocked.

// cvgcQuantumWords bounds the words scanned per collector-goroutine (or
// commit-assist) quantum — small enough that a mutator blocked on the
// gate (or assisting inline) waits a few hundred microseconds at worst,
// even counting the evacuations a scanned object can trigger through the
// word-at-a-time page-table read path, large enough to amortize the gate
// handoff. The scan is slot-granular: an object wider than the remaining
// budget pauses mid-object and resumes at the next quantum.
const cvgcQuantumWords = 256

// startConcurrentScan publishes the scan (cvgcOn) and starts the collector
// goroutine. Called with the stop latch held exclusively, right after
// gc.StartConcurrent; the gate is acquired here if this exclusive section
// does not hold it yet, so the scanner cannot run before the section ends.
func (hp *Heap) startConcurrentScan() {
	hp.cvgcOn.Store(true)
	if !hp.gateHeldExcl {
		hp.gate.Lock()
		hp.gateHeldExcl = true
	}
	if hp.cfg.ConcVGCManualScan {
		return // paced explicitly via StepVolatileScan
	}
	hp.scanWG.Add(1)
	go hp.scanLoop(hp.vgc.Epoch())
}

// StepVolatileScan advances an in-flight concurrent scan by one quantum
// from the calling goroutine (Config.ConcVGCManualScan mode, where no
// collector goroutine exists). It reports whether scan work remains; the
// caller retires a drained scan with FinishVolatileScan, or leaves it in
// flight (a crash mid-scan is a valid state — the flip was logged, the
// scan was not). A no-op returning false when no scan is active.
func (hp *Heap) StepVolatileScan() bool {
	if !hp.cvgcOn.Load() {
		return false
	}
	hp.gate.Lock()
	defer hp.gate.Unlock()
	if !hp.vgc.ConcurrentActive() {
		return false
	}
	hp.drainGrayLocked()
	more := hp.vgc.ScanQuantum(cvgcQuantumWords)
	hp.bb.Record(obs.EvVGCQuantum, 0, hp.vgc.Epoch(), 0)
	return more
}

// assistVolatileScan lets a mutator that just committed advance an
// in-flight concurrent scan by one quantum (all latches already
// released). On a multi-core host the collector goroutine does nearly
// all the work and the assist is a cheap atomic load; with GOMAXPROCS=1
// the goroutine is starved by a busy mutator, and without the assist
// every scan would be drained inline by the next exclusive section — a
// stop-the-world pause in disguise. Manual pacing mode opts out: there
// the harness owns every scan step.
func (hp *Heap) assistVolatileScan() {
	if !hp.cvgcOn.Load() || hp.cfg.ConcVGCManualScan {
		return
	}
	if hp.StepVolatileScan() {
		return
	}
	// No scan work left: retire the collection now instead of waiting for
	// the collector goroutine (starved for whole scheduler slices on a
	// uniprocessor) — every volatile load pays the read barrier until
	// retirement, and the aged space keeps the copy reserve off limits.
	hp.lockExclusive()
	hp.finishConcurrentLocked()
	hp.unlockExclusive()
}

// scanLoop is the collector goroutine: it advances the scan in gate-sized
// quanta and then retires the collection. epoch identifies the collection
// it serves — if an exclusive section finished it inline (and possibly
// started a newer one), the loop exits without touching anything.
func (hp *Heap) scanLoop(epoch uint64) {
	defer hp.scanWG.Done()
	// CPU profiles separate collector work from mutator work by these
	// labels (obs.Serve wires /debug/pprof/).
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("subsystem", "vgc-scan", "epoch", strconv.FormatUint(epoch, 10))))
	// A device fault injected under the scanner (internal/faultfs)
	// surfaces as a typed panic; the scan simply stops — the next
	// mutator to need the collection finished will run into the fault
	// in a context that can report it.
	defer func() {
		if r := recover(); r != nil {
			if _, ok := storage.AsDeviceError(r); !ok {
				panic(r)
			}
		}
	}()
	for {
		more := func() bool {
			hp.gate.Lock()
			defer hp.gate.Unlock()
			if !hp.vgc.ConcurrentActive() || hp.vgc.Epoch() != epoch {
				return false
			}
			hp.drainGrayLocked()
			more := hp.vgc.ScanQuantum(cvgcQuantumWords)
			hp.bb.Record(obs.EvVGCQuantum, 0, epoch, 0)
			return more
		}()
		if !more {
			break
		}
		runtime.Gosched()
	}
	hp.tryFinishConcurrent(epoch)
}

// tryFinishConcurrent retires the collection if it is still the one the
// scanner was serving.
func (hp *Heap) tryFinishConcurrent(epoch uint64) {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	if hp.vgc.ConcurrentActive() && hp.vgc.Epoch() == epoch {
		hp.finishConcurrentLocked()
	}
}

// finishConcurrentLocked retires an in-flight concurrent scan inline:
// remaining copies drain, from-space is discarded, and the deferred
// stable-GC trigger is re-checked. Called with the stop latch held
// exclusively; a no-op when no scan is active.
func (hp *Heap) finishConcurrentLocked() {
	if hp.vgc == nil || !hp.vgc.ConcurrentActive() {
		return
	}
	hp.drainGrayLocked()
	epoch := hp.vgc.Epoch()
	hp.vgc.FinishConcurrent()
	hp.cvgcOn.Store(false)
	hp.bb.Record(obs.EvVGCFinish, 0, epoch, 0)
	hp.maybeStartStableGC()
}

// abandonConcurrentLocked forgets an in-flight scan without touching
// memory — the crash path.
func (hp *Heap) abandonConcurrentLocked() {
	if hp.vgc == nil || !hp.vgc.ConcurrentActive() {
		return
	}
	hp.grayMu.Lock()
	hp.grayQ = nil
	hp.grayMu.Unlock()
	hp.vgc.AbandonConcurrent()
	hp.cvgcOn.Store(false)
}

// volLoad is the mostly-concurrent read barrier: during a concurrent scan
// every volatile pointer load is transported out of from-space, so
// mutators never observe — and never store — a from-space address after
// the flip.
func (hp *Heap) volLoad(p word.Addr) word.Addr {
	if p.IsNil() || !hp.cvgcOn.Load() {
		return p
	}
	return hp.vgc.Transport(p)
}
