package core

import (
	"errors"
	"fmt"

	"stableheap/internal/gc"
	"stableheap/internal/lock"
	"stableheap/internal/obs"
	"stableheap/internal/recovery"
	"stableheap/internal/stability"
	"stableheap/internal/storage"
	"stableheap/internal/tx"
	"stableheap/internal/vm"
	"stableheap/internal/wal"
	"stableheap/internal/word"
)

// Checkpoint takes a fuzzy checkpoint (§2.2.4): the system is quiesced at
// a low-level action boundary (the latch), one record is spooled, and the
// master block is updated lazily once ordinary log traffic makes the
// record stable. No synchronous writes.
func (hp *Heap) Checkpoint() word.LSN {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	return hp.checkpointLocked()
}

func (hp *Heap) checkpointLocked() word.LSN {
	cp := wal.CheckpointRec{
		Txs:             hp.txm.TableEntries(),
		StableCur:       hp.sgc.CurrentIndex(),
		RootObj:         hp.rootObj,
		StableAlloc:     hp.sgc.Current().CopyPtr,
		StableAllocHigh: hp.sgc.Current().AllocPtr,
		GC:              hp.sgc.State(),
		VolatileLo:      hp.volLo,
		VolatileHi:      hp.volatileEnd(),
		NextTx:          hp.txm.NextTxID(),
	}
	if hp.cfg.Divided {
		cp.VolatileCur = hp.vgc.CurrentIndex()
		cp.NextEpoch = hp.vgc.Epoch() + 1
		for a := range hp.ls {
			cp.LS = append(cp.LS, a)
		}
		cp.SRem = hp.stableSlots()
	}
	lsn := hp.ckpt.Take(cp)
	hp.bb.Record(obs.EvCheckpoint, 0, uint64(lsn), 0)
	return lsn
}

// TruncateLog frees reclaimable log space (callable any time; policy is
// the caller's).
func (hp *Heap) TruncateLog() {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	hp.ckpt.TruncateLog()
}

// Close shuts the heap down cleanly: any in-flight concurrent scan
// retires, active transactions abort, dirty pages flush, and a final
// checkpoint is forced.
func (hp *Heap) Close() {
	// The watchdog goroutine snapshots metrics under the shared latch:
	// stop it before anything below goes exclusive.
	hp.stopWatchdog()
	if hp.group != nil {
		hp.group.close()
	}
	func() {
		hp.lockExclusive()
		defer hp.unlockExclusive()
		hp.finishConcurrentLocked()
		hp.txm.AbortAll()
		if hp.sgc.Active() {
			hp.finishStableGCLocked()
		}
		hp.mem.FlushAll()
		hp.checkpointLocked()
		hp.ckpt.ForcePromote()
	}()
	// The collector goroutine (if any) saw its collection retired above and
	// is on its way out; it must not outlive the heap it scans.
	hp.scanWG.Wait()
	hp.journal.Flush()
	// File-backed heaps: release the store last, once every layer above
	// has flushed through it.
	if hp.store != nil {
		hp.store.Close()
		hp.store = nil
	}
}

// Crash simulates a system failure (§2.2.2): main memory, the volatile
// log tail, the lock table and the transaction table vanish; the disk and
// the stable log survive. The heap is unusable afterwards; call Recover
// with the surviving devices.
func (hp *Heap) Crash() (storage.PageStore, storage.LogDevice) {
	hp.stopWatchdog()
	if hp.group != nil {
		hp.group.close()
	}
	func() {
		hp.lockExclusive()
		defer hp.unlockExclusive()
		// An in-flight concurrent volatile scan simply vanishes: it was
		// pure unlogged copying, the flip record is already in the log,
		// and recovery treats the whole volatile area as dead. A
		// concurrent stable scan is abandoned too, but its steps are all
		// in the log — recovery resumes that collection where it stopped.
		hp.abandonConcurrentLocked()
		hp.abandonStableConcLocked()
		// CrashDevice applies any planned torn writes (internal/faultfs)
		// and records them as EvFault events — so crash THEN stamp the
		// EvCrash marker, and the flushed timeline ends with the injected
		// fault followed by the crash, exactly the order things happened.
		hp.log.CrashDevice()
		hp.mem.Crash()
		hp.locks.Reset()
		hp.txm.Crash()
		hp.bb.Record(obs.EvCrash, 0, 0, 0)
	}()
	hp.scanWG.Wait()
	// The journal device models battery-backed recorder hardware: it is
	// not among the crashed devices, so the flush below is what makes the
	// pre-crash timeline readable after recovery.
	hp.journal.Flush()
	return hp.disk, hp.logDev
}

// Devices exposes the simulated devices (for the crash harness, which
// controls which pages reach disk before a crash).
func (hp *Heap) Devices() (storage.PageStore, storage.LogDevice) { return hp.disk, hp.logDev }

// Recover rebuilds a stable heap from surviving devices: repeating
// history, loser rollback, collector-state restoration, and the
// post-recovery evacuation of recovered newly stable objects out of the
// volatile area. Recovery work is bounded by the log written since the
// last checkpoint — independent of heap size (Ch. 4) — even if the crash
// interrupted a collection (§3.5.3).
func Recover(cfg Config, disk storage.PageStore, logDev storage.LogDevice) (*Heap, error) {
	return recoverCommon(cfg, disk, logDev, false)
}

func recoverCommon(cfg Config, disk storage.PageStore, logDev storage.LogDevice, media bool) (hpOut *Heap, errOut error) {
	// The detectable-failure contract: device wrappers report corruption
	// and surfaced I/O faults as typed panics from deep inside scans and
	// page reads; recovery must turn them into errors naming the corrupt
	// page or LSN, never admit a half-recovered heap.
	defer func() {
		if v := recover(); v != nil {
			if e, ok := storage.AsDeviceError(v); ok {
				hpOut, errOut = nil, fmt.Errorf("core: recovery failed detectably: %w", e)
				return
			}
			panic(v)
		}
	}()
	cfg = cfg.withDefaults()
	hp := build(cfg, disk, logDev)
	var res *recovery.Result
	var err error
	opts := recovery.Options{RedoWorkers: cfg.RecoveryWorkers, Trace: hp.tr}
	if media {
		res, err = recovery.RecoverFromArchiveWith(hp.mem, hp.log, opts)
	} else {
		res, err = recovery.RecoverWith(hp.mem, hp.log, opts)
	}
	if err != nil {
		return nil, err
	}
	hp.lastRecovery = res
	hp.met.recAnalysis.Observe(uint64(res.Stats.Analysis))
	hp.met.recRedo.Observe(uint64(res.Stats.Redo))
	hp.met.recUndo.Observe(uint64(res.Stats.Undo))
	cp := res.CP

	hp.rootObj = cp.RootObj
	hp.txm.SetNextTxID(cp.NextTx)

	// Restore in-doubt (prepared) transactions before anything can move
	// objects: their translation maps then track every later copy, and
	// their object write locks are reacquired so no one reads undecided
	// state.
	for _, idt := range res.InDoubt {
		id := idt.ID
		_, objs := hp.txm.RestoreInDoubt(id, idt.LastLSN, func(a word.Addr, at word.LSN) word.Addr {
			return res.Translate(id, a, at)
		})
		for _, obj := range objs {
			if err := hp.locks.TryAcquire(id, obj, lock.Write); err != nil {
				return nil, fmt.Errorf("core: cannot relock in-doubt tx %d on %v: %w", id, obj, err)
			}
		}
	}

	// Restore the stable collector. When a collection was in progress it
	// resumes — concurrently again, if the configuration allows, so the
	// remaining scan stays off the stop latch after recovery too;
	// otherwise only the space choice and the allocation frontier are
	// reinstated.
	if cp.GC.Active && cfg.ConcurrentSGC && cfg.Incremental {
		hp.sgc.RestoreConcurrent(cp.GC, cp.StableCur)
	} else {
		hp.sgc.Restore(cp.GC, cp.StableCur)
	}
	if !cp.GC.Active {
		hp.sgc.SetAllocFrontier(cp.StableAlloc)
		if cp.StableAllocHigh != 0 {
			hp.sgc.SetAllocHighFrontier(cp.StableAllocHigh)
		}
		// The idle semispace's replayed pages are dead (it was a freed
		// from-space); drop them.
		idle := hp.sgc.CurrentIndex() ^ 1
		lo := hp.stableLo
		hi := hp.stableLo + word.Addr(word.WordsToBytes(cfg.StableWords))
		if idle == 1 {
			lo, hi = hi, hp.stableHi
		}
		hp.mem.DiscardRange(lo, hi)
	}

	if cfg.Divided {
		hp.vgc.SetCurrentIndex(cp.VolatileCur)
		for _, a := range cp.LS {
			hp.ls[a] = true
		}
		for _, a := range cp.SRem {
			hp.srem[a] = true
		}
		// Evacuate recovered newly stable objects into the stable area;
		// everything else in the volatile area died with the crash.
		if len(hp.ls) > 0 {
			if err := hp.ensureStableSpaceRecovered(); err != nil {
				return nil, err
			}
			hp.vgc.CollectRecovered()
		}
		hp.ls = make(map[word.Addr]bool)
		hp.volRootObj = hp.allocVolRootObj()
	}

	// A fresh checkpoint bounds the next recovery; forced so the master
	// advances before the heap is used.
	hp.checkpointLocked()
	hp.ckpt.ForcePromote()
	hp.ckpt.TruncateLog()
	// Recovery may have resumed an in-progress stable collection; publish
	// the collector-activity mirror so the first concurrent actions route
	// through the exclusive path (single-threaded here, no latch needed).
	hp.syncCoarse()
	if hp.sgc.ConcurrentActive() {
		// The crash interrupted a concurrent stable scan and the restore
		// above picked the collection back up mid-sweep (the recovered
		// scan pointer). Re-arm the barriers and restart the collector
		// goroutine — through the latch, so the goroutine's first quantum
		// orders after everything recovery did. (ensureStableSpaceRecovered
		// may instead have finished the collection inline; then this is
		// skipped and syncCoarse above already republished coarse.)
		hp.lockExclusive()
		hp.startStableConcScan()
		hp.unlockExclusive()
	}
	hp.bb.Record(obs.EvRecovery, 0, uint64(res.RedoApplied), uint64(res.RedoScanned))
	hp.journal.Flush()
	hp.startWatchdog()
	return hp, nil
}

// ensureStableSpaceRecovered makes room for the post-recovery evacuation.
// A stable collection cannot run yet (the volatile area still holds the
// recovered objects and they are unreachable through normal roots), so
// space must already exist; the sizing invariant (semispace ≥ live set)
// guarantees it except for pathological configurations.
func (hp *Heap) ensureStableSpaceRecovered() error {
	if hp.sgc.Active() {
		hp.sgc.Finish()
	}
	if hp.sgc.FreeWords() < hp.lsWords() {
		return ErrHeapFull
	}
	return nil
}

// LastRecovery returns diagnostics from the most recent Recover (nil for a
// freshly created heap).
func (hp *Heap) LastRecovery() *recovery.Result { return hp.lastRecovery }

// InDoubt lists prepared transactions restored by recovery and still
// awaiting the coordinator's decision.
func (hp *Heap) InDoubt() []word.TxID {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	var out []word.TxID
	if hp.lastRecovery != nil {
		for _, idt := range hp.lastRecovery.InDoubt {
			if hp.txm.Lookup(idt.ID) != nil {
				out = append(out, idt.ID)
			}
		}
	}
	return out
}

// ResolveCommit applies the coordinator's commit decision to an in-doubt
// transaction.
func (hp *Heap) ResolveCommit(id word.TxID) error {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	t := hp.txm.Lookup(id)
	if t == nil || !t.Prepared() {
		return fmt.Errorf("core: no in-doubt transaction %d", id)
	}
	hp.txm.Commit(t)
	hp.ckpt.Promote()
	return nil
}

// ResolveAbort applies the coordinator's abort decision to an in-doubt
// transaction: its effects are rolled back in place, through any object
// moves since the updates were logged.
func (hp *Heap) ResolveAbort(id word.TxID) error {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	t := hp.txm.Lookup(id)
	if t == nil || !t.Prepared() {
		return fmt.Errorf("core: no in-doubt transaction %d", id)
	}
	hp.txm.Abort(t)
	return nil
}

// ResolveWith resolves every in-doubt transaction by asking decide for its
// fate — the participant side of presumed-abort two-phase commit recovery,
// where decide consults the coordinator's decision log (internal/shard).
// It returns how many transactions were committed and aborted.
func (hp *Heap) ResolveWith(decide func(word.TxID) bool) (commits, aborts int, err error) {
	for _, id := range hp.InDoubt() {
		if decide(id) {
			if err := hp.ResolveCommit(id); err != nil {
				return commits, aborts, err
			}
			commits++
		} else {
			if err := hp.ResolveAbort(id); err != nil {
				return commits, aborts, err
			}
			aborts++
		}
	}
	return commits, aborts, nil
}

// --- introspection -------------------------------------------------------

// Config returns the heap's configuration.
func (hp *Heap) Config() Config { return hp.cfg }

// Log returns the log manager (read-only use: stats, inspection).
func (hp *Heap) Log() *wal.Manager { return hp.log }

// StableCollector exposes the stable-area collector (stats, policy).
func (hp *Heap) StableCollector() interface {
	Active() bool
	Epoch() uint64
} {
	return hp.sgc
}

// CollectStable runs (or finishes) a full stable-area collection.
func (hp *Heap) CollectStable() {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	if !hp.sgc.Active() {
		hp.startStableGC()
	}
	hp.finishStableGCLocked()
}

// StepStable advances an active stable collection by one quantum (the
// benchmark harness paces collections explicitly).
func (hp *Heap) StepStable() bool {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	if !hp.sgc.Active() {
		return false
	}
	if hp.sgc.ConcurrentActive() {
		// Grayed targets must be evacuated before from-space can be
		// declared drained, and they push the copy pointer the step below
		// compares against.
		hp.drainGrayLocked()
	}
	return hp.sgc.Step()
}

// StartStableCollection flips without finishing (incremental mode).
func (hp *Heap) StartStableCollection() {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	if !hp.sgc.Active() {
		hp.startStableGC()
	}
}

// CollectVolatile runs one volatile-area collection (divided mode),
// returning the number of newly stable objects moved to the stable area.
func (hp *Heap) CollectVolatile() (int, error) {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	if !hp.cfg.Divided {
		return 0, nil
	}
	before := hp.vgc.Stats().MovedObjs
	if err := hp.collectVolatile(); err != nil {
		return 0, err
	}
	return int(hp.vgc.Stats().MovedObjs - before), nil
}

// CollectNursery runs one minor collection (divided mode with a nursery),
// promoting nursery survivors into the aged volatile space, returning the
// number of objects promoted. Falls back to a full volatile collection
// when the aged space cannot absorb the nursery.
func (hp *Heap) CollectNursery() (int, error) {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	if !hp.cfg.Divided || hp.nurLo == 0 {
		return 0, nil
	}
	before := hp.vgc.Stats().PromotedObjs
	if err := hp.collectNursery(); err != nil {
		return 0, err
	}
	return int(hp.vgc.Stats().PromotedObjs - before), nil
}

// ConcurrentScanActive reports whether a mostly-concurrent volatile scan
// is in flight on the collector goroutine.
func (hp *Heap) ConcurrentScanActive() bool { return hp.cvgcOn.Load() }

// FinishVolatileScan retires an in-flight concurrent volatile scan
// inline, blocking until from-space is discarded. A no-op when no scan is
// active.
func (hp *Heap) FinishVolatileScan() {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	hp.finishConcurrentLocked()
}

// NurseryUsedWords returns the words currently allocated in the nursery
// (0 without one).
func (hp *Heap) NurseryUsedWords() int {
	excl := hp.rlock()
	defer hp.runlock(excl)
	if hp.vgc == nil {
		return 0
	}
	return hp.vgc.NurseryUsedWords()
}

// VolatileFreeWords returns the free words of the current aged semispace
// (0 without a volatile area) — with NurseryUsedWords, the occupancy view
// behind generational pacing decisions.
func (hp *Heap) VolatileFreeWords() int {
	excl := hp.rlock()
	defer hp.runlock(excl)
	if hp.vgc == nil {
		return 0
	}
	return hp.vgc.FreeWords()
}

// LSCount returns the number of newly stable objects awaiting evacuation.
func (hp *Heap) LSCount() int {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	return len(hp.ls)
}

// SRemCount returns the size of the stable→volatile remembered set.
func (hp *Heap) SRemCount() int {
	hp.lockExclusive()
	defer hp.unlockExclusive()
	return len(hp.srem)
}

// Mem exposes the one-level store (crash harness and benchmarks).
func (hp *Heap) Mem() *vm.Store { return hp.mem }

// TxStats returns transaction-manager counters.
func (hp *Heap) TxStats() tx.Stats { return hp.txm.Stats() }

// GCStats returns stable-collector counters. Taken under the shared latch
// so a concurrent stable scan quantum never races the snapshot.
func (hp *Heap) GCStats() gc.Stats {
	excl := hp.rlock()
	defer hp.runlock(excl)
	return hp.sgc.Stats()
}

// VGCStats returns volatile-collector counters (zero when !Divided). Taken
// under the shared latch so a concurrent scan quantum never races the
// snapshot.
func (hp *Heap) VGCStats() gc.VolatileStats {
	if hp.vgc == nil {
		return gc.VolatileStats{}
	}
	excl := hp.rlock()
	defer hp.runlock(excl)
	return hp.vgc.Stats()
}

// TrackerStats returns stability-tracker counters (zero when !Divided).
func (hp *Heap) TrackerStats() stability.Stats {
	if hp.track == nil {
		return stability.Stats{}
	}
	return hp.track.Stats()
}

// CheckpointStats returns checkpointer counters.
func (hp *Heap) CheckpointStats() recovery.CheckpointStats { return hp.ckpt.Stats() }

// LockStats returns lock-manager counters.
func (hp *Heap) LockStats() lock.Stats { return hp.locks.Stats() }

// GroupCommitStats returns group-commit counters (zero when disabled).
func (hp *Heap) GroupCommitStats() GroupCommitStats {
	if hp.group == nil {
		return GroupCommitStats{}
	}
	return hp.group.Stats()
}

// RecoverFromLog rebuilds the entire stable heap from the log alone — the
// total-media-failure case of §2.2.2: the disk is gone, but "our recovery
// system writes enough information to the log to recover from a total
// media failure". It requires the log to be untruncated back to its first
// checkpoint (the archive discipline); repeating history then reconstructs
// every page from scratch.
func RecoverFromLog(cfg Config, logDev storage.LogDevice) (hpOut *Heap, errOut error) {
	// The probe scan below panics with a typed error on a corrupt frame;
	// convert it (recoverCommon guards its own scans the same way).
	defer func() {
		if v := recover(); v != nil {
			if e, ok := storage.AsDeviceError(v); ok {
				hpOut, errOut = nil, fmt.Errorf("core: media recovery failed detectably: %w", e)
				return
			}
			panic(v)
		}
	}()
	cfg = cfg.withDefaults()
	if logDev.TruncLSN() > 1 {
		// A truncated log cannot rebuild a lost disk: later checkpoints
		// assume flushed pages that no longer exist. The archive
		// discipline keeps the full log (or pairs truncation with disk
		// archives, which this reproduction does not model).
		return nil, errors.New("core: log is truncated; media recovery needs the full log from format time")
	}
	// Synthesize the lost master block: find the first retained
	// checkpoint and recover from there — everything after it replays.
	var firstCP word.LSN
	probe := wal.NewManager(logDev)
	// A torn final record (crash mid-force) must be rewound before the
	// probe scan walks into it; complete-frame corruption is fatal here.
	if _, err := probe.RepairTornTail(logDev.TruncLSN()); err != nil {
		return nil, fmt.Errorf("core: media recovery failed detectably: %w", err)
	}
	probe.Scan(logDev.TruncLSN(), true, func(lsn word.LSN, r wal.Record) bool {
		if r.Type() == wal.TCheckpoint {
			firstCP = lsn
			return false
		}
		return true
	})
	if firstCP == word.NilLSN {
		return nil, errors.New("core: no checkpoint retained in the log (archive requires an untruncated log)")
	}
	disk := storage.NewDisk(cfg.PageSize)
	disk.SetMaster(storage.Master{Formatted: true, CheckpointLSN: firstCP, PageSize: cfg.PageSize})
	return recoverCommon(cfg, disk, logDev, true)
}
