package core

import (
	"sync"
	"time"

	"stableheap/internal/obs"
	"stableheap/internal/word"
)

// The action latch (sharded).
//
// The paper's model makes low-level actions indivisible (§2.1). The original
// implementation realized that with a single mutex; this file splits it so
// independent transactions run in parallel while every collector-visible
// state change still happens in a globally exclusive section:
//
//   - stop is the coarse latch. Read (shared) mode admits ordinary
//     transaction actions concurrently; write (exclusive) mode — "stop the
//     heap" — is taken by everything that moves objects, flips semispaces,
//     walks the whole transaction table, or checkpoints: collection steps,
//     volatile collections, stability tracking, abort/undo, checkpoint,
//     crash, recovery, 2PC resolution.
//
//   - shards stripe writers by page: an update action holds exactly one
//     shard — the page of the slot it writes — across the {WAL append,
//     memory write} pair, so per-page append order matches memory-write
//     order and a flushed page can never carry a pageLSN newer than a
//     memory write it missed (the lost-update hazard). Readers take no
//     shard: object read locks already exclude same-slot writers, and the
//     one-level store copies words out under its own lock.
//
//   - coarse mirrors "the stable collector is active". While a collection
//     is in progress every action goes exclusive, preserving the paper's
//     GC atomicity argument verbatim (Ch. 3): barrier traps, transports,
//     and scan steps never interleave with mutator actions. coarse only
//     transitions inside exclusive sections, so a shared holder that
//     observed coarse == false keeps that truth for its whole critical
//     section.
//
//   - gate is the mostly-concurrent collection gate (Config.ConcurrentVGC
//     and Config.ConcurrentSGC). While a concurrent scan is in flight
//     (cvgcOn for the volatile area, csgcOn for the stable area), ordinary
//     actions additionally hold gate shared and the collector goroutine
//     runs each scan quantum under gate exclusive: copying excludes
//     mutators one quantum at a time without ever taking the stop latch,
//     which is exactly how the scan stays off the mutator's critical path.
//     Both flags only transition with stop held exclusively, so a shared
//     holder's view of them is stable for its whole critical section.
//     Exclusive sections acquire the gate too (gateHeldExcl) — the
//     collector goroutine must not run while the heap is stopped — and
//     drain the SATB gray stack on entry, so aborts always see evacuated
//     undo values. During a concurrent *stable* scan, coarse stays false:
//     the collection is active but mutator actions keep running shared,
//     which is the whole point.
//
// Lock order: stop → gate → {sgc.stransMu → shard, vgc.transMu} →
// {ckpt.mu, vm.mu → wal.mu, txm.mu → txm.undoMu, lock.mu, candMu, grayMu,
// remMu}. Ordinary updates take their one shard directly; a stable
// transport takes stransMu first, then the shards of the pages its logged
// copy writes (no writer ever waits on stransMu while holding a shard, so
// the nesting cannot deadlock). Subsystem mutexes never call back into
// the latch.
func (hp *Heap) rlock() (excl bool) {
	for {
		if hp.coarse.Load() {
			hp.lockExclusive()
			return true
		}
		hp.stop.RLock()
		if hp.coarse.Load() {
			// A collection flipped on between the check and the RLock;
			// fall back to the exclusive path.
			hp.stop.RUnlock()
			continue
		}
		if hp.cvgcOn.Load() || hp.csgcOn.Load() {
			// Neither flag can change while we hold stop shared, so the
			// matching runlock releases the gate iff one is set here.
			hp.gate.RLock()
		}
		return false
	}
}

// runlock releases what rlock acquired.
func (hp *Heap) runlock(excl bool) {
	if excl {
		hp.unlockExclusive()
		return
	}
	if hp.cvgcOn.Load() || hp.csgcOn.Load() {
		hp.gate.RUnlock()
	}
	hp.stop.RUnlock()
}

// lockExclusive stops the heap: it waits for every in-flight shared action
// to drain and blocks new ones. The wait is recorded in the latch_stop
// histogram (the price of a flip or checkpoint under load). With a
// concurrent scan in flight it also parks the collector goroutine (gate)
// and drains the gray stack.
func (hp *Heap) lockExclusive() {
	start := time.Now()
	hp.stop.Lock()
	// The gate is taken unconditionally, not just when cvgcOn: a collector
	// goroutine whose collection was retired inline can still be between
	// quanta, and it re-checks liveness under the gate — so any exclusive
	// section that might restart the collector state must already exclude
	// it. Uncontended, this is a handful of nanoseconds on a path that just
	// paid for draining every shared action.
	hp.gate.Lock()
	hp.gateHeldExcl = true
	if hp.cvgcOn.Load() || hp.csgcOn.Load() {
		hp.drainGrayLocked()
	}
	wait := time.Since(start)
	hp.met.latchStop.Observe(uint64(wait))
	if wait > latchStallThreshold {
		hp.bb.Record(obs.EvLatchStall, 0, uint64(wait), 0)
	}
}

// latchStallThreshold is the exclusive-acquisition wait beyond which a
// latch-stall event lands in the flight recorder: long enough that the
// uncontended path (nanoseconds) and routine drains (microseconds) never
// record, short enough to catch any stall a watchdog rule would trip on.
const latchStallThreshold = time.Millisecond

// unlockExclusive republishes the collector-activity mirror and releases
// the stop latch. Every exclusive section that may have started or finished
// a stable collection exits through here.
func (hp *Heap) unlockExclusive() {
	hp.syncCoarse()
	if hp.gateHeldExcl {
		hp.gateHeldExcl = false
		hp.gate.Unlock()
	}
	hp.stop.Unlock()
}

// drainGrayLocked evacuates every grayed (SATB-overwritten) pointer
// target. Callers hold the gate exclusively (via lockExclusive or the
// collector goroutine), so no mutator races the copies. One queue serves
// both areas: each entry is dispatched to whichever collector's from-space
// contains it (the other's evacuate is a cheap range-check no-op).
func (hp *Heap) drainGrayLocked() {
	for {
		hp.grayMu.Lock()
		q := hp.grayQ
		hp.grayQ = nil
		hp.grayMu.Unlock()
		if len(q) == 0 {
			return
		}
		for _, p := range q {
			if hp.vgc != nil {
				hp.vgc.EvacuateGray(p)
			}
			hp.sgc.EvacuateConcGray(p)
		}
	}
}

// syncCoarse refreshes the collector-activity mirror. Callers hold the stop
// latch exclusively (or run single-threaded, during build and recovery).
// A concurrent stable collection keeps coarse false — mutator actions run
// shared behind the gate and the read barrier — and this is also where a
// retired concurrent collection stops routing loads through the barrier.
func (hp *Heap) syncCoarse() {
	if hp.csgcOn.Load() && !hp.sgc.ConcurrentActive() {
		hp.csgcOn.Store(false)
		hp.bb.Record(obs.EvSGCFinish, 0, hp.sgc.Epoch(), 0)
	}
	hp.coarse.Store(hp.sgc.Active() && !hp.csgcOn.Load())
}

// shardOf returns the writer stripe for the page containing a.
func (hp *Heap) shardOf(a word.Addr) *sync.Mutex {
	return &hp.shards[(uint64(a)/uint64(hp.cfg.PageSize))%uint64(len(hp.shards))]
}

// lockShard takes the writer stripe for slot unless the action already runs
// exclusively (exclusive sections exclude all writers by themselves).
// Returns an unlock function (no-op when exclusive).
func (hp *Heap) lockShard(excl bool, slot word.Addr) func() {
	if excl {
		return func() {}
	}
	sh := hp.shardOf(slot)
	sh.Lock()
	return sh.Unlock
}
