package core

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func groupCfg() Config {
	c := smallCfg()
	c.LockWait = 250 * time.Millisecond
	c.GroupCommitWindow = 2 * time.Millisecond
	c.GroupCommitBatch = 8
	return c
}

// TestGroupCommitAmortizesForces runs concurrent committers and checks the
// force count is well below the commit count, while every commit remains
// durable across a crash.
func TestGroupCommitAmortizesForces(t *testing.T) {
	hp := Open(groupCfg())
	const workers = 8
	const perWorker = 10

	forcesBefore := hp.log.Device().Stats().Forces

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := func() error {
					tr := hp.Begin()
					n, err := tr.Alloc(1, 0, 1)
					if err != nil {
						tr.Abort()
						return err
					}
					if err := tr.SetData(n, 0, uint64(w*100+i)); err != nil {
						tr.Abort()
						return err
					}
					if err := tr.SetRoot(w, n); err != nil {
						tr.Abort()
						return err
					}
					return tr.Commit()
				}()
				if err != nil && !errors.Is(err, ErrConflict) {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	forces := hp.log.Device().Stats().Forces - forcesBefore
	commits := hp.TxStats().Committed
	if forces >= commits {
		t.Fatalf("group commit did not amortize: %d forces for %d commits", forces, commits)
	}
	gs := hp.GroupCommitStats()
	if gs.Commits == 0 || gs.Forces == 0 {
		t.Fatalf("group stats empty: %+v", gs)
	}

	// Durability: crash and verify the last committed value per slot.
	disk, logDev := hp.Crash()
	hp2, err := Recover(groupCfg(), disk, logDev)
	if err != nil {
		t.Fatal(err)
	}
	tr := hp2.Begin()
	defer tr.Abort()
	for w := 0; w < workers; w++ {
		r, err := tr.Root(w)
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			t.Fatalf("slot %d lost a committed store", w)
		}
		v, err := tr.Data(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v/100 != uint64(w) {
			t.Fatalf("slot %d holds foreign value %d", w, v)
		}
	}
}

// TestGroupCommitSingleCommitter verifies a lone committer still becomes
// durable within the window (no lost wakeups).
func TestGroupCommitSingleCommitter(t *testing.T) {
	hp := Open(groupCfg())
	tr := hp.Begin()
	n, _ := tr.Alloc(1, 0, 1)
	tr.SetData(n, 0, 5)
	tr.SetRoot(0, n)
	start := time.Now()
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("commit took far longer than the window")
	}
	disk, logDev := hp.Crash()
	hp2, err := Recover(groupCfg(), disk, logDev)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := hp2.Begin()
	defer tr2.Abort()
	r, _ := tr2.Root(0)
	if v, _ := tr2.Data(r, 0); v != 5 {
		t.Fatal("lone group commit not durable")
	}
}

// TestGroupCommitCloseReleasesWaiters verifies shutdown while committers
// are parked falls back to direct forces instead of hanging.
func TestGroupCommitCloseReleasesWaiters(t *testing.T) {
	c := groupCfg()
	c.GroupCommitWindow = time.Hour // the flusher will never fire on its own
	c.GroupCommitBatch = 1000
	hp := Open(c)
	done := make(chan error, 1)
	go func() {
		tr := hp.Begin()
		n, _ := tr.Alloc(1, 0, 1)
		tr.SetRoot(0, n)
		done <- tr.Commit()
	}()
	time.Sleep(20 * time.Millisecond) // let it park
	hp.group.close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked committer not released by close")
	}
}
