package wal

import (
	"testing"

	"stableheap/internal/storage"
	"stableheap/internal/word"
)

// Codec benchmarks for the zero-allocation hot path. allocs/op is the
// headline number: Encode is one allocation (the frame), AppendEncode into
// a warm buffer and Decode are zero.

func benchRecords() map[string]Record {
	contents := make([]byte, 64)
	for i := range contents {
		contents[i] = byte(i)
	}
	fixes := make([]PtrFix, 8)
	for i := range fixes {
		fixes[i] = PtrFix{Addr: word.Addr(8 * (i + 1)), NewPtr: word.Addr(8 * (i + 100))}
	}
	return map[string]Record{
		"Update": UpdateRec{TxHdr: TxHdr{TxID: 7, PrevLSN: 41}, Addr: 0x1000, Obj: 0xFF8,
			Redo: contents[:8], Undo: contents[8:16]},
		"Commit": CommitRec{TxHdr: TxHdr{TxID: 7, PrevLSN: 42}},
		"Scan":   ScanRec{Epoch: 3, Page: 9, Full: true, ScanPtr: 0x2000, Fixes: fixes},
		"Copy":   CopyRec{Epoch: 3, From: 0x3000, To: 0x4000, SizeWords: 8, Descriptor: 0xAB, Contents: contents},
	}
}

func BenchmarkEncode(b *testing.B) {
	for name, rec := range benchRecords() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = Encode(rec)
			}
		})
	}
}

func BenchmarkAppendEncode(b *testing.B) {
	for name, rec := range benchRecords() {
		b.Run(name, func(b *testing.B) {
			buf := AppendEncode(nil, rec) // warm the buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = AppendEncode(buf[:0], rec)
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for name, rec := range benchRecords() {
		b.Run(name, func(b *testing.B) {
			frame := Encode(rec)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkManagerAppend(b *testing.B) {
	for name, rec := range benchRecords() {
		b.Run(name, func(b *testing.B) {
			mgr := NewManager(storage.NewLog(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mgr.Append(rec)
			}
		})
	}
}
