package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"stableheap/internal/obs"
	"stableheap/internal/storage"
	"stableheap/internal/word"
)

// ErrTruncated reports a read below the log's truncation point: the record
// existed but its segment has been reclaimed. Callers that hold an LSN from
// an external source (a replication resume point, an archive cursor) match
// it with errors.Is to distinguish "gone forever" from "never written".
var ErrTruncated = errors.New("wal: LSN below the truncation point")

// Manager spools records to the log device and decodes them back. It is the
// "log manager" of §2.2: Append writes to the volatile log (the buffer);
// Force makes a prefix stable. Per-type volume counters feed the logging
// overhead experiments (E6); always-on latency histograms over Append and
// Force feed the logging-overhead distributions.
//
// The manager owns the WAL latch: Append/Force and the cursor and
// truncation methods serialize on an internal mutex, so concurrent
// transactions append and force without any coarser heap latch (group
// commit absorbs the force). Scan and ScanBatch are the deliberate
// exception — they stay unsynchronized because redo work inside a scan
// callback may itself force the log (page eviction), which would deadlock
// on a held manager mutex; they are only called from single-threaded
// contexts (recovery, tooling, quiesced experiments).
type Manager struct {
	mu     sync.Mutex // serializes device access (see doc above)
	dev    storage.LogDevice
	count  [maxType]int64
	bytes  [maxType]int64
	append obs.Histogram
	force  obs.Histogram
	tr     *obs.Trace
	bb     *obs.BlackBox
	// retain holds per-owner retention floors: Truncate never drops
	// records at or above any floor. Replication connections register the
	// LSN their standby still needs (see SetRetainFloor).
	retain map[string]word.LSN
}

// NewManager wraps a log device.
func NewManager(dev storage.LogDevice) *Manager {
	return &Manager{dev: dev}
}

// Device exposes the underlying log device (for crash simulation and stats).
func (m *Manager) Device() storage.LogDevice { return m.dev }

// encPool holds scratch buffers for Append's encode step: the framed record
// only lives until the device copies it into its own storage, so the buffer
// is returned immediately and the steady-state commit path encodes without
// allocating.
var encPool = sync.Pool{New: func() any { return &encBuf{} }}

type encBuf struct{ b []byte }

// Append spools a record to the volatile log and returns its LSN.
func (m *Manager) Append(r Record) word.LSN {
	start := time.Now()
	eb := encPool.Get().(*encBuf)
	frame := AppendEncode(eb.b[:0], r)
	lsn := m.appendLocked(frame, r.Type())
	eb.b = frame
	encPool.Put(eb)
	m.append.Since(start)
	return lsn
}

// appendLocked is the mutex-held device section of Append, deferred so a
// fault-injection panic from the device cannot leak the WAL latch.
func (m *Manager) appendLocked(frame []byte, t Type) word.LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	lsn := m.dev.Append(frame)
	m.count[t]++
	m.bytes[t] += int64(len(frame))
	return lsn
}

// Force synchronously writes the log through lsn to stable storage.
func (m *Manager) Force(lsn word.LSN) {
	start := time.Now()
	func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.dev.Force(lsn)
	}()
	d := time.Since(start)
	m.force.Observe(uint64(d))
	m.tr.Complete("wal", "force", start, d)
	m.bb.Record(obs.EvWALForce, 0, uint64(lsn), uint64(d))
}

// ForceAll forces the entire volatile tail.
func (m *Manager) ForceAll() {
	start := time.Now()
	var end word.LSN
	func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.dev.ForceAll()
		end = m.dev.StableLSN()
	}()
	d := time.Since(start)
	m.force.Observe(uint64(d))
	m.tr.Complete("wal", "force-all", start, d)
	m.bb.Record(obs.EvWALForce, 0, uint64(end), uint64(d))
}

// AppendHist snapshots the Append latency histogram (nanoseconds).
func (m *Manager) AppendHist() obs.HistSnapshot { return m.append.Snapshot() }

// ForceHist snapshots the Force latency histogram (nanoseconds).
func (m *Manager) ForceHist() obs.HistSnapshot { return m.force.Snapshot() }

// SetTrace wires an optional trace ring; nil disables tracing.
func (m *Manager) SetTrace(t *obs.Trace) { m.tr = t }

// SetRecorder wires an optional flight recorder: every force lands in the
// black-box timeline with its LSN. Nil disables.
func (m *Manager) SetRecorder(b *obs.BlackBox) { m.bb = b }

// StableLSN returns the first LSN not guaranteed durable.
func (m *Manager) StableLSN() word.LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dev.StableLSN()
}

// EndLSN returns the LSN the next record will receive.
func (m *Manager) EndLSN() word.LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dev.EndLSN()
}

// IsStable reports whether the record at lsn is durable.
func (m *Manager) IsStable(lsn word.LSN) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dev.IsStable(lsn)
}

// DeviceStats returns the device traffic counters under the WAL latch, so
// metrics snapshots do not race a concurrent group-commit force.
func (m *Manager) DeviceStats() storage.LogStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dev.Stats()
}

// CloneDevice deep-copies the log device under the WAL latch (base
// backups run while the group-commit flusher may be forcing).
func (m *Manager) CloneDevice() storage.LogDevice {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dev.Clone()
}

// CrashDevice drops the device's volatile tail under the WAL latch, so a
// simulated crash serializes against in-flight shipping scans and forces.
func (m *Manager) CrashDevice() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dev.Crash()
}

// ReadAt decodes the record at lsn. An LSN below the truncation point
// returns an error wrapping ErrTruncated (the record is gone, not
// absent); a frame that exists but fails to decode returns a typed
// storage.CorruptFrameError (match with errors.Is(err,
// storage.ErrCorrupt)); any other failure means no record starts at lsn.
func (m *Manager) ReadAt(lsn word.LSN) (Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	frame, ok := m.dev.ReadAt(lsn)
	if !ok {
		if lsn < m.dev.TruncLSN() {
			return nil, fmt.Errorf("wal: record at LSN %d reclaimed (truncation point %d): %w",
				lsn, m.dev.TruncLSN(), ErrTruncated)
		}
		return nil, fmt.Errorf("wal: no record at LSN %d", lsn)
	}
	r, err := Decode(frame)
	if err != nil {
		return nil, &storage.CorruptFrameError{LSN: lsn, Reason: err.Error()}
	}
	return r, nil
}

// MustReadAt is ReadAt for callers holding an LSN that must be present
// (e.g. a prevLSN chain inside the retained log); it panics on failure.
func (m *Manager) MustReadAt(lsn word.LSN) Record {
	r, err := m.ReadAt(lsn)
	if err != nil {
		panic(err)
	}
	return r
}

// Scan decodes records in LSN order starting at from; fn returning false
// stops the scan. If stableOnly is set, the volatile tail is not visited
// (recovery sees only the stable log). Decoding failures panic with a
// typed storage.CorruptFrameError naming the LSN: a retained record that
// no longer decodes is device corruption, and the recovery entry points
// convert the panic into a returned error (the detectable-failure
// contract) rather than admitting a half-read log.
func (m *Manager) Scan(from word.LSN, stableOnly bool, fn func(lsn word.LSN, r Record) bool) {
	m.dev.Scan(from, stableOnly, func(lsn word.LSN, frame []byte) bool {
		r, err := Decode(frame)
		if err != nil {
			panic(&storage.CorruptFrameError{LSN: lsn, Reason: err.Error()})
		}
		return fn(lsn, r)
	})
}

// ScanBatch is Scan with batched delivery: records are decoded in LSN order
// and handed to fn up to batchSize at a time, as parallel lsns/recs slices
// that are reused across calls (fn must not retain the slices themselves;
// the records stay valid, though their byte fields alias retained log
// entries — see Decode). This amortizes per-record scan overhead on the
// recovery redo path.
func (m *Manager) ScanBatch(from word.LSN, stableOnly bool, batchSize int, fn func(lsns []word.LSN, recs []Record) bool) {
	if batchSize <= 0 {
		batchSize = 64
	}
	recs := make([]Record, 0, batchSize)
	m.dev.ScanBatches(from, stableOnly, batchSize, func(lsns []word.LSN, frames [][]byte) bool {
		recs = recs[:0]
		for i, frame := range frames {
			r, err := Decode(frame)
			if err != nil {
				panic(&storage.CorruptFrameError{LSN: lsns[i], Reason: err.Error()})
			}
			recs = append(recs, r)
		}
		return fn(lsns, recs)
	})
}

// Truncate releases log space below keep (segment granularity), clamped so
// no registered retention floor is violated: a replication standby that has
// not acknowledged past a floor keeps its resume window alive no matter how
// far checkpoints advance.
func (m *Manager) Truncate(keep word.LSN) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.retainFloorLocked(); f != word.NilLSN && f < keep {
		keep = f
	}
	// Round down to the device's own segment boundary before deciding
	// whether there is anything to free: the device only reclaims whole
	// segments, and its segment map is backend-specific (the file-backed
	// log reports its on-disk segmentation, not the in-memory default).
	seg := word.LSN(m.dev.SegmentBytes())
	if seg <= 0 {
		seg = 1
	}
	boundary := (keep-1)/seg*seg + 1
	if boundary <= m.dev.TruncLSN() {
		return // nothing new to free (possibly floor-clamped to zero work)
	}
	m.dev.Truncate(keep)
}

// SetRetainFloor registers (or moves) owner's retention floor: Truncate will
// keep every record at or above lsn until the floor is raised or cleared.
// Floors deliberately survive connection loss — a disconnected standby's
// resume window must not be reclaimed while it is reconnecting.
func (m *Manager) SetRetainFloor(owner string, lsn word.LSN) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.retain == nil {
		m.retain = make(map[string]word.LSN)
	}
	m.retain[owner] = lsn
}

// ClearRetainFloor removes owner's retention floor.
func (m *Manager) ClearRetainFloor(owner string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.retain, owner)
}

// RetainFloor returns the lowest registered retention floor (NilLSN if none).
func (m *Manager) RetainFloor() word.LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retainFloorLocked()
}

func (m *Manager) retainFloorLocked() word.LSN {
	min := word.NilLSN
	for _, lsn := range m.retain {
		if min == word.NilLSN || lsn < min {
			min = lsn
		}
	}
	return min
}

// CopyStableTail returns the raw frames of the stable log starting exactly
// at the record boundary from, concatenated, up to roughly maxBytes (always
// at least one whole frame when any is available). The second result is the
// LSN of the first record NOT included — the cursor for the next call. The
// frames keep their on-device encoding (length-prefixed, CRC-framed), so a
// replication shipper can put them on the wire verbatim and the standby can
// append them at identical LSNs.
//
// An exhausted window (from == StableLSN) returns an empty slice; a from
// below the truncation point returns an error wrapping ErrTruncated (the
// resume point is unserviceable — the standby needs a fresh base backup).
func (m *Manager) CopyStableTail(from word.LSN, maxBytes int) ([]byte, word.LSN, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if from < m.dev.TruncLSN() {
		return nil, from, fmt.Errorf("wal: cannot ship from LSN %d (truncation point %d): %w",
			from, m.dev.TruncLSN(), ErrTruncated)
	}
	if from > m.dev.StableLSN() {
		return nil, from, fmt.Errorf("wal: ship cursor %d beyond stable LSN %d", from, m.dev.StableLSN())
	}
	if maxBytes <= 0 {
		maxBytes = 64 * 1024
	}
	var out []byte
	next := from
	boundary := true
	var scanErr error
	m.dev.ScanBatches(from, true, 64, func(lsns []word.LSN, frames [][]byte) bool {
		for i, frame := range frames {
			if boundary {
				if lsns[i] != from {
					scanErr = fmt.Errorf("wal: ship cursor %d is not a record boundary (next record at %d)", from, lsns[i])
					return false
				}
				boundary = false
			}
			if len(out) > 0 && len(out)+len(frame) > maxBytes {
				return false
			}
			out = append(out, frame...)
			next = lsns[i] + word.LSN(len(frame))
		}
		return true
	})
	return out, next, scanErr
}

// TypeStats reports how many records of type t were appended and their
// total framed bytes.
func (m *Manager) TypeStats(t Type) (count, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count[t], m.bytes[t]
}

// VolumeByClass summarizes appended bytes by origin: transactional records,
// collector records, stability-tracking records, and bookkeeping. This is
// the breakdown of experiment E6.
func (m *Manager) VolumeByClass() (txBytes, gcBytes, trackBytes, bookBytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for t := Type(1); t < maxType; t++ {
		b := m.bytes[t]
		switch t {
		case TBegin, TUpdate, TCLR, TAlloc, TCommit, TAbort, TEnd:
			txBytes += b
		case TFlip, TCopy, TScan, TGCEnd:
			gcBytes += b
		case TBase, TComplete, TV2SCopy, TSFix, TVFlip:
			trackBytes += b
		case TPageFetch, TEndWrite, TCheckpoint:
			bookBytes += b
		}
	}
	return
}

// ResetStats zeroes the per-type counters (device stats are separate).
func (m *Manager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count = [maxType]int64{}
	m.bytes = [maxType]int64{}
}
