package wal

import (
	"errors"
	"testing"

	"stableheap/internal/storage"
	"stableheap/internal/word"
)

// Table-driven error-path tests around the torn-tail classifier: the one
// place that must distinguish "a force was interrupted" (repairable —
// the record was never acknowledged) from "a complete frame rotted"
// (corruption — it may be an acknowledged commit, so recovery must
// refuse, not silently rewind over it).

func TestRepairTornTailClassification(t *testing.T) {
	cases := []struct {
		name string
		// mutate receives the device after 3 records are appended and
		// forced and a 4th sits in the volatile tail; it injects the
		// scenario's fault (forcing the tail itself when the fault needs a
		// durable final frame) and returns the LSN expected in the outcome
		// (torn LSN or corrupt-frame LSN, per the want fields).
		mutate      func(dev *storage.Log, lsns []word.LSN) word.LSN
		wantTorn    bool // RepairTornTail rewinds and returns the LSN
		wantCorrupt bool // RepairTornTail returns a CorruptFrameError at the LSN
		survivors   int  // records decodable after the call
	}{
		{
			name: "whole log is untouched",
			mutate: func(dev *storage.Log, _ []word.LSN) word.LSN {
				dev.ForceAll()
				return word.NilLSN
			},
			survivors: 4,
		},
		{
			name: "tail torn mid-record",
			mutate: func(dev *storage.Log, lsns []word.LSN) word.LSN {
				dev.CrashTorn(lsns[3] + 10) // past the header, short of the declared length
				return lsns[3]
			},
			wantTorn:  true,
			survivors: 3,
		},
		{
			name: "tail torn inside the 8-byte frame header",
			mutate: func(dev *storage.Log, lsns []word.LSN) word.LSN {
				dev.CrashTorn(lsns[3] + 2)
				return lsns[3]
			},
			wantTorn:  true,
			survivors: 3,
		},
		{
			name: "tear on an exact frame boundary leaves a whole log",
			mutate: func(dev *storage.Log, lsns []word.LSN) word.LSN {
				dev.CrashTorn(lsns[3]) // == StableLSN: the force never began
				return word.NilLSN
			},
			survivors: 3,
		},
		{
			name: "complete final frame with rotted payload is corruption, not a tear",
			mutate: func(dev *storage.Log, lsns []word.LSN) word.LSN {
				dev.ForceAll()
				dev.CorruptEntry(lsns[3], func(b []byte) { b[len(b)-1] ^= 0x01 })
				return lsns[3]
			},
			wantCorrupt: true,
		},
		{
			name: "complete final frame with rotted CRC word is corruption",
			mutate: func(dev *storage.Log, lsns []word.LSN) word.LSN {
				dev.ForceAll()
				dev.CorruptEntry(lsns[3], func(b []byte) { b[4] ^= 0x80 })
				return lsns[3]
			},
			wantCorrupt: true,
		},
		{
			name: "undecodable interior frame with records after it is corruption",
			mutate: func(dev *storage.Log, lsns []word.LSN) word.LSN {
				dev.ForceAll()
				dev.CorruptEntry(lsns[1], func(b []byte) { b[frameHeader] ^= 0xff })
				return lsns[1]
			},
			wantCorrupt: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev := storage.NewLog(1 << 20)
			m := NewManager(dev)
			var lsns []word.LSN
			for i := 0; i < 4; i++ {
				if i == 3 {
					m.ForceAll() // the 4th record stays in the volatile tail
				}
				lsns = append(lsns, m.Append(UpdateRec{
					TxHdr: TxHdr{TxID: word.TxID(i + 1)},
					Addr:  word.Addr(8 * (i + 1)),
					Redo:  []byte{byte(i), 1, 2, 3, 4, 5, 6, 7},
					Undo:  []byte{byte(i), 7, 6, 5, 4, 3, 2, 1},
				}))
			}
			wantLSN := tc.mutate(dev, lsns)

			torn, err := m.RepairTornTail(dev.TruncLSN())
			switch {
			case tc.wantCorrupt:
				var cf *storage.CorruptFrameError
				if !errors.As(err, &cf) {
					t.Fatalf("got (torn=%d, err=%v), want CorruptFrameError", torn, err)
				}
				if cf.LSN != wantLSN {
					t.Fatalf("corrupt frame reported at %d, want %d", cf.LSN, wantLSN)
				}
				if !errors.Is(err, storage.ErrCorrupt) {
					t.Fatalf("corrupt-frame error does not match ErrCorrupt: %v", err)
				}
				return // corrupt devices are refused; nothing more to check
			case tc.wantTorn:
				if err != nil || torn != wantLSN {
					t.Fatalf("got (torn=%d, err=%v), want repaired at %d", torn, err, wantLSN)
				}
				if dev.EndLSN() != wantLSN {
					t.Fatalf("device not rewound: end=%d, want %d", dev.EndLSN(), wantLSN)
				}
			default:
				if err != nil || torn != word.NilLSN {
					t.Fatalf("got (torn=%d, err=%v), want whole log", torn, err)
				}
			}

			// After a clean or repaired classification every retained record
			// decodes, and a fresh append lands at the repaired position.
			n := 0
			m.Scan(dev.TruncLSN(), false, func(word.LSN, Record) bool { n++; return true })
			if n != tc.survivors {
				t.Fatalf("%d records decode after repair, want %d", n, tc.survivors)
			}
			end := dev.EndLSN()
			if lsn := m.Append(CommitRec{TxHdr: TxHdr{TxID: 99}}); lsn != end {
				t.Fatalf("append after repair landed at %d, want %d", lsn, end)
			}
		})
	}
}

// TestReadAtErrorKinds pins the three distinct failure modes of
// Manager.ReadAt — reclaimed (ErrTruncated), rotten (ErrCorrupt), and
// plain absent — as disjoint, errors.Is-distinguishable outcomes.
func TestReadAtErrorKinds(t *testing.T) {
	dev := storage.NewLog(64)
	m := NewManager(dev)
	var lsns []word.LSN
	for i := 0; i < 12; i++ {
		lsns = append(lsns, m.Append(UpdateRec{
			TxHdr: TxHdr{TxID: word.TxID(i + 1)}, Addr: 8,
			Redo: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Undo: []byte{8, 7, 6, 5, 4, 3, 2, 1},
		}))
	}
	m.ForceAll()
	m.Truncate(lsns[8])
	rotted := lsns[10]
	dev.CorruptEntry(rotted, func(b []byte) { b[frameHeader] ^= 0x40 })

	cases := []struct {
		name          string
		lsn           word.LSN
		wantTruncated bool
		wantCorrupt   bool
	}{
		{"below the truncation point", lsns[0], true, false},
		{"retained and intact", lsns[9], false, false},
		{"retained but rotted", rotted, false, true},
		{"beyond the end", m.EndLSN() + 64, false, false},
		{"non-boundary interior offset", lsns[9] + 1, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := m.ReadAt(tc.lsn)
			if got := errors.Is(err, ErrTruncated); got != tc.wantTruncated {
				t.Fatalf("errors.Is(err, ErrTruncated) = %v, want %v (err=%v)", got, tc.wantTruncated, err)
			}
			if got := errors.Is(err, storage.ErrCorrupt); got != tc.wantCorrupt {
				t.Fatalf("errors.Is(err, ErrCorrupt) = %v, want %v (err=%v)", got, tc.wantCorrupt, err)
			}
			if tc.wantCorrupt {
				var cf *storage.CorruptFrameError
				if !errors.As(err, &cf) || cf.LSN != tc.lsn {
					t.Fatalf("corrupt read did not name the frame: %v", err)
				}
			}
			if tc.name == "retained and intact" && (err != nil || rec == nil) {
				t.Fatalf("intact read failed: %v", err)
			}
		})
	}
}

// TestFrameLenBoundaries drives the frame splitter over every length
// boundary a torn or rotted prefix can produce.
func TestFrameLenBoundaries(t *testing.T) {
	whole := Encode(CommitRec{TxHdr: TxHdr{TxID: 7}})
	cases := []struct {
		name string
		buf  []byte
		n    int // expected length; 0 means an error is required
	}{
		{"empty buffer", nil, 0},
		{"one byte", whole[:1], 0},
		{"header minus one", whole[:frameHeader], 0},
		{"header plus type byte of a longer frame", whole[:frameHeader+1], 0},
		{"exact whole frame", whole, len(whole)},
		{"whole frame plus trailing bytes", append(append([]byte{}, whole...), 0xee, 0xee), len(whole)},
		{"declared length below the minimum", func() []byte {
			b := append([]byte{}, whole...)
			b[0], b[1], b[2], b[3] = frameHeader, 0, 0, 0 // claims no type byte
			return b
		}(), 0},
		{"declared length beyond the buffer", func() []byte {
			b := append([]byte{}, whole...)
			b[0] = byte(len(whole) + 1)
			return b
		}(), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := FrameLen(tc.buf)
			if tc.n == 0 {
				if err == nil {
					t.Fatalf("FrameLen = %d, want error", n)
				}
				return
			}
			if err != nil || n != tc.n {
				t.Fatalf("FrameLen = (%d, %v), want (%d, nil)", n, err, tc.n)
			}
		})
	}
}
