// Package wal defines the write-ahead log record taxonomy of the stable
// heap and its encoding, and provides the log manager that spools records
// to the simulated log device.
//
// The taxonomy follows the paper:
//
//   - transactional records (§2.2.3, Ch. 4): Begin, Update (redo+undo),
//     CLR (compensation, redo-only), Alloc, Commit, Abort, End;
//   - collector records (Ch. 3): Flip, Copy, Scan, GCEnd — the records that
//     make the copy step and scan step of the incremental copying collector
//     repeatable after a crash;
//   - stability-tracking records (Ch. 5): Base ("log records for initial
//     object values"), Complete (the base-update-complete protocol),
//     V2SCopy (a newly stable object moved from the volatile area into the
//     stable area at a volatile collection), SFix (redo-only fix-up of a
//     stable-area slot that pointed at a moved object), VFlip;
//   - recovery bookkeeping (§2.2.4, Ch. 4): PageFetch, EndWrite,
//     Checkpoint.
//
// All records are redo records in the repeating-history sense; only Update
// carries undo information, and only CLRs reference an undo-next LSN.
package wal

import (
	"fmt"

	"stableheap/internal/word"
)

// Type tags a log record.
type Type uint8

// Log record types.
const (
	TInvalid Type = iota
	TBegin
	TUpdate
	TCLR
	TAlloc
	TCommit
	TAbort
	TEnd
	TFlip
	TCopy
	TScan
	TGCEnd
	TBase
	TComplete
	TV2SCopy
	TSFix
	TVFlip
	TPageFetch
	TEndWrite
	TCheckpoint
	TLogical
	TPrepare
	TTwoPCBegin
	TTwoPCDecide
	TTwoPCEnd
	maxType
)

var typeNames = [...]string{
	TInvalid:     "invalid",
	TBegin:       "begin",
	TUpdate:      "update",
	TCLR:         "clr",
	TAlloc:       "alloc",
	TCommit:      "commit",
	TAbort:       "abort",
	TEnd:         "end",
	TFlip:        "flip",
	TCopy:        "copy",
	TScan:        "scan",
	TGCEnd:       "gcend",
	TBase:        "base",
	TComplete:    "complete",
	TV2SCopy:     "v2scopy",
	TSFix:        "sfix",
	TVFlip:       "vflip",
	TPageFetch:   "pagefetch",
	TEndWrite:    "endwrite",
	TCheckpoint:  "checkpoint",
	TLogical:     "logical",
	TPrepare:     "prepare",
	TTwoPCBegin:  "2pc-begin",
	TTwoPCDecide: "2pc-decide",
	TTwoPCEnd:    "2pc-end",
}

// String returns the record type's short name.
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Record is any log record. Concrete types are the *Rec structs below.
type Record interface {
	// Type returns the record's type tag.
	Type() Type
	// Tx returns the owning transaction, or word.SystemTx for records
	// written by the collector, buffer manager, or checkpointer.
	Tx() word.TxID
}

// TxHdr is the header embedded by records that belong to a transaction's
// log chain.
type TxHdr struct {
	TxID    word.TxID
	PrevLSN word.LSN // previous record of the same transaction, or NilLSN
}

func (r TxHdr) Tx() word.TxID { return r.TxID }

// sysRec is embedded by system records outside any transaction.
type sysRec struct{}

func (sysRec) Tx() word.TxID { return word.SystemTx }

// BeginRec marks the start of a transaction.
type BeginRec struct {
	TxHdr
}

// Type implements Record.
func (BeginRec) Type() Type { return TBegin }

// Update record flags.
const (
	// UFPtrSlot marks an update of a pointer field (the slot holds an
	// object reference, not raw data).
	UFPtrSlot uint8 = 1 << iota
	// UFPtrToVolatile marks a pointer store whose new target lies in the
	// volatile area: recovery uses it to rebuild the stable→volatile
	// remembered set.
	UFPtrToVolatile
)

// UpdateRec is a transactional modification of a contiguous byte range of a
// single page, carrying both redo (new) and undo (old) images
// (§2.2.3 steps 1–5). Addr is word aligned and the range never crosses a
// page boundary.
type UpdateRec struct {
	TxHdr
	Addr word.Addr
	// Obj is the base address of the containing object when the update
	// was logged: recovery uses it to reacquire an in-doubt
	// transaction's object locks (locks are object granular).
	Obj   word.Addr
	Flags uint8
	Redo  []byte
	Undo  []byte
}

// PtrToVolatile reports whether this update stored a volatile-area pointer
// into a stable slot.
func (r UpdateRec) PtrToVolatile() bool { return r.Flags&UFPtrToVolatile != 0 }

// Type implements Record.
func (UpdateRec) Type() Type { return TUpdate }

// CLRRec is a compensation log record: the redo record written when an
// update is undone. It carries no undo information ("undo never has to be
// undone") and UndoNext points at the next record of the transaction to
// undo, skipping already-compensated work.
type CLRRec struct {
	TxHdr
	Addr word.Addr
	// Flags mirrors UpdateRec's flags for the *restored* value, so
	// recovery analysis can maintain the remembered set through undo.
	Flags    uint8
	Redo     []byte
	UndoNext word.LSN
}

// PtrToVolatile reports whether the restored value is a volatile-area
// pointer in a stable slot.
func (r CLRRec) PtrToVolatile() bool { return r.Flags&UFPtrToVolatile != 0 }

// Type implements Record.
func (CLRRec) Type() Type { return TCLR }

// AllocRec makes a stable-area allocation repeatable (§4.2): redo re-writes
// the descriptor word and zero-fills the object body. It needs no undo — an
// aborted transaction's allocations become unreachable garbage once the
// pointer stores that published them are undone.
type AllocRec struct {
	TxHdr
	Addr       word.Addr
	Descriptor uint64
	SizeWords  int // total object size including the descriptor word
}

// Type implements Record.
func (AllocRec) Type() Type { return TAlloc }

// LogicalRec is a logical update (§2.2.4's "logical undo" optimization):
// the word at Addr had Delta added to it (wrapping). Redo re-adds Delta
// (page-LSN conditioning keeps it apply-once); undo adds -Delta at the
// object's current location — no before-image travels in the log, and the
// undo needs no value translation when the collector moves the object.
type LogicalRec struct {
	TxHdr
	Addr  word.Addr
	Obj   word.Addr // containing object (see UpdateRec.Obj)
	Delta uint64
}

// Type implements Record.
func (LogicalRec) Type() Type { return TLogical }

// CLRLogicalDelta flags a CLR whose Redo is a logical delta (8 bytes,
// wrapping add) rather than a physical image.
const CLRLogicalDelta uint8 = 1 << 7

// PrepareRec records the participant side of two-phase commit (the
// extension §2.2 says the recovery system supports): the transaction's
// effects are complete and durable-on-force, but its fate belongs to the
// coordinator. A prepared transaction that is alive at a crash becomes
// in-doubt: recovery neither rolls it back nor ends it — it reacquires the
// transaction's write locks and waits for resolution.
type PrepareRec struct {
	TxHdr
}

// Type implements Record.
func (PrepareRec) Type() Type { return TPrepare }

// TwoPCParticipant names one branch of a global (cross-partition)
// transaction: the partition index and the branch's local transaction id
// in that partition's heap.
type TwoPCParticipant struct {
	Part uint32
	TxID word.TxID
}

// TwoPCBeginRec is the coordinator side of two-phase commit: global
// transaction GID spans Parts, whose branches are about to prepare. The
// record is appended to the coordinator's decision log but NOT forced —
// under presumed abort, losing it costs nothing (no decision record means
// abort).
type TwoPCBeginRec struct {
	sysRec
	GID   uint64
	Parts []TwoPCParticipant
}

// Type implements Record.
func (TwoPCBeginRec) Type() Type { return TTwoPCBegin }

// TwoPCDecideRec is the coordinator's commit/abort decision for global
// transaction GID. A commit decision is FORCED before any participant
// branch commits — it is the single point of no return; after a crash,
// every prepared branch named in a durable commit decision resolves to
// commit, and every other in-doubt branch resolves to abort (presumed
// abort). Abort decisions are appended unforced purely as an audit trail.
type TwoPCDecideRec struct {
	sysRec
	GID    uint64
	Commit bool
	Parts  []TwoPCParticipant
}

// Type implements Record.
func (TwoPCDecideRec) Type() Type { return TTwoPCDecide }

// TwoPCEndRec records that every participant of GID has applied the
// decision: the coordinator may forget the global transaction and the
// decision log below the oldest unended decision can be truncated.
type TwoPCEndRec struct {
	sysRec
	GID uint64
}

// Type implements Record.
func (TwoPCEndRec) Type() Type { return TTwoPCEnd }

// CommitRec commits a transaction; the log is forced through it.
type CommitRec struct {
	TxHdr
}

// Type implements Record.
func (CommitRec) Type() Type { return TCommit }

// AbortRec marks the start of a transaction's rollback; CLRs follow.
type AbortRec struct {
	TxHdr
}

// Type implements Record.
func (AbortRec) Type() Type { return TAbort }

// EndRec marks a transaction fully finished (committed or rolled back).
type EndRec struct {
	TxHdr
}

// Type implements Record.
func (EndRec) Type() Type { return TEnd }

// FlipRec starts collection Epoch of the stable area: the previous to-space
// becomes from-space and copying begins into [ToLo, ToHi). RootObj gives the
// translated address of the global stable-root object, whose copy record
// follows the flip in the log.
type FlipRec struct {
	sysRec
	Epoch  uint64
	FromLo word.Addr
	FromHi word.Addr
	ToLo   word.Addr
	ToHi   word.Addr
	// RootObjFrom/RootObjTo translate the stable root object.
	RootObjFrom word.Addr
	RootObjTo   word.Addr
}

// Type implements Record.
func (FlipRec) Type() Type { return TFlip }

// CopyRec is the collector's copy step (Fig. 3.6/3.7): object of SizeWords
// words copied From → To, with a forwarding pointer overwriting the
// from-space descriptor word. Descriptor preserves the overwritten word so
// that redo can reconstruct the to-space copy even when the from-space page
// reached disk after the copy (the paper's "lost object descriptor" crash,
// Fig. 3.5). The record carries no object contents: repeating history
// guarantees the replayed from-space image is the historical one.
type CopyRec struct {
	sysRec
	Epoch      uint64
	From       word.Addr
	To         word.Addr
	SizeWords  int
	Descriptor uint64
	// Contents is empty in the paper's design (replay reconstructs the
	// copy from the from-space image). The content-carrying ablation
	// (Config.CopyContents, experiment E14) fills it with the full
	// object image, making copy replay self-contained at the price of
	// logging every copied byte.
	Contents []byte
}

// Type implements Record.
func (CopyRec) Type() Type { return TCopy }

// PtrFix is one pointer translation performed by a scan step: the word at
// Addr now holds NewPtr.
type PtrFix struct {
	Addr   word.Addr
	NewPtr word.Addr
}

// ScanRec is the collector's scan step (Fig. 3.8/3.9): the from-space
// pointers in a region of a single to-space page were translated to
// to-space addresses. Fixes lists the slots changed; the copy records for
// any objects transported by this step precede the scan record in the log.
type ScanRec struct {
	sysRec
	Epoch uint64
	Page  word.PageID
	// Full marks a page-granular scan (a read-barrier trap): the whole
	// page is now scanned. Sequential background steps set it only when
	// the batch completed the page.
	Full bool
	// ScanPtr is the background scan pointer after this step (NilAddr
	// for trap scans), letting recovery resume the sweep.
	ScanPtr word.Addr
	Fixes   []PtrFix
}

// Type implements Record.
func (ScanRec) Type() Type { return TScan }

// GCEndRec marks collection Epoch complete: all of to-space is scanned and
// from-space is free.
type GCEndRec struct {
	sysRec
	Epoch uint64
}

// Type implements Record.
func (GCEndRec) Type() Type { return TGCEnd }

// BaseRec logs the initial value of a newly stable object at its volatile
// address (Ch. 5, "Log Records for Initial Object Values"). It belongs to
// the committing transaction's chain but is redo-only.
type BaseRec struct {
	TxHdr
	Addr word.Addr
	// Object is the full object image: descriptor word plus all fields.
	Object []byte
}

// Type implements Record.
func (BaseRec) Type() Type { return TBase }

// CompleteRec closes a tracking batch (the paper's base-update-complete
// protocol): all base records for the transaction's newly stable objects
// precede it.
type CompleteRec struct {
	TxHdr
	Count int // number of objects stabilized by the batch
}

// Type implements Record.
func (CompleteRec) Type() Type { return TComplete }

// V2SCopyRec moves a newly stable object from the volatile area into the
// stable area at a volatile collection (Ch. 5, Fig. 5.2 "V2scopy"). Unlike
// CopyRec it carries the full object image: the volatile source page is not
// obliged to be reconstructible once the move is complete, so the record
// must be self-contained for redo.
type V2SCopyRec struct {
	sysRec
	From   word.Addr
	To     word.Addr
	Object []byte
}

// Type implements Record.
func (V2SCopyRec) Type() Type { return TV2SCopy }

// SFixRec is a redo-only fix-up of stable-area pointer slots performed when
// newly stable objects move out of the volatile area (Ch. 5, Fig. 5.3
// "S4vscan"): each slot now holds the object's stable-area address. All
// slots are on a single page.
type SFixRec struct {
	sysRec
	Page  word.PageID
	Fixes []PtrFix
}

// Type implements Record.
func (SFixRec) Type() Type { return TSFix }

// VFlipRec marks a volatile-area collection that evacuated Moved newly
// stable objects into the stable area (Fig. 7.2 "Volatile Flip Record").
type VFlipRec struct {
	sysRec
	Epoch uint64
	Moved int
}

// Type implements Record.
func (VFlipRec) Type() Type { return TVFlip }

// PageFetchRec records that the buffer manager fetched Page from disk
// (§2.2.4, first optimization).
type PageFetchRec struct {
	sysRec
	Page word.PageID
}

// Type implements Record.
func (PageFetchRec) Type() Type { return TPageFetch }

// EndWriteRec records that an updated page reached disk, carrying the page
// LSN that was written (§2.2.4).
type EndWriteRec struct {
	sysRec
	Page    word.PageID
	PageLSN word.LSN
}

// Type implements Record.
func (EndWriteRec) Type() Type { return TEndWrite }

// DirtyPage is a dirty-page-table entry carried by a checkpoint.
type DirtyPage struct {
	Page word.PageID
	// RecLSN is the LSN of the earliest record that might not be
	// reflected on the disk copy of the page.
	RecLSN word.LSN
}

// AddrPair is one undo address translation carried by a checkpointed
// transaction entry: the address a record logged, the slot's current
// location as of the checkpoint, and the record's LSN. At identifies the
// entry — one transaction can log the same address twice for different
// objects (from-space reuse across collections), so address alone is
// ambiguous; recovery's translate looks the seed up by (At, Orig).
type AddrPair struct {
	At   word.LSN
	Orig word.Addr
	Cur  word.Addr
}

// TxEntry is an active-transaction-table entry carried by a checkpoint.
type TxEntry struct {
	TxID     word.TxID
	FirstLSN word.LSN
	LastLSN  word.LSN
	// Aborting is set if the transaction had begun rolling back.
	Aborting bool
	// Prepared is set if the transaction has a stable prepare record
	// (in-doubt across crashes until the coordinator resolves it).
	Prepared bool
	// UndoNext is the next record to undo if Aborting.
	UndoNext word.LSN
	// UTT holds the undo address translations accumulated for this
	// transaction: for every address appearing in its undo records that
	// the collector has since moved, the current address
	// (§4.4 "Translating Undo Roots").
	UTT []AddrPair
}

// GCState is the collector state carried by a checkpoint so that recovery
// after a crash during a collection starts at the checkpoint — not at the
// flip — keeping recovery time independent of heap size (§3.5.3, §4.5).
type GCState struct {
	Active  bool
	Epoch   uint64
	FlipLSN word.LSN
	FromLo  word.Addr
	FromHi  word.Addr
	ToLo    word.Addr
	ToHi    word.Addr
	CopyPtr word.Addr
	ScanPtr word.Addr
	// AllocPtr is the mutator allocation pointer at the top of to-space.
	AllocPtr word.Addr
	// Scanned marks to-space pages already scanned (and hence
	// unprotected), indexed from the page containing ToLo.
	Scanned []bool
	// LastObj is the Last Object Table: for each to-space page in the
	// copy region, the address of the last object starting on it
	// (NilAddr if none), indexed from the page containing ToLo.
	LastObj []word.Addr
}

// CheckpointRec is the fuzzy checkpoint record (§2.2.4, §4.6). It bounds
// redo (dirty page table), seeds undo (transaction table with undo
// translations), and snapshots the collector and stability-tracker state.
type CheckpointRec struct {
	sysRec
	Dirty []DirtyPage
	Txs   []TxEntry
	// Space configuration at the checkpoint.
	StableCur   int // which stable semispace is current (0 or 1)
	VolatileCur int
	RootObj     word.Addr // current address of the stable root object
	// StableAlloc is the allocation frontier in the current stable
	// semispace when no collection is active.
	StableAlloc word.Addr
	// StableAllocHigh is the descending high-end frontier of the current
	// stable semispace: objects moved in during a concurrent stable scan
	// land above it (never swept by the scan) and stay live after the
	// collection ends, so the frontier must survive checkpoints or a
	// recovered heap would allocate over them.
	StableAllocHigh word.Addr
	GC              GCState
	// LS lists newly stable objects still living in the volatile area
	// (the paper's LS set), as their volatile addresses.
	LS []word.Addr
	// SRem lists stable-area slots currently holding pointers into the
	// volatile area (the stable→volatile remembered set).
	SRem []word.Addr
	// VolatileLo/VolatileHi bound the volatile area, so recovery can
	// classify pointer targets without knowing the configuration.
	VolatileLo word.Addr
	VolatileHi word.Addr
	// NextTx and NextEpoch resume the id generators.
	NextTx    word.TxID
	NextEpoch uint64
}

// Type implements Record.
func (CheckpointRec) Type() Type { return TCheckpoint }
