package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"stableheap/internal/word"
)

// Frame layout: [u32 frameLen][u32 crc][u8 type][payload…]. frameLen counts
// the whole frame; crc covers type+payload. A record's LSN is the byte
// offset of the frame start in the conceptual infinite log.
//
// The encoder is allocation-disciplined: one body-layout function
// (encodeBody) runs twice over the same enc type, once counting bytes and
// once storing them, so Encode computes the exact frame size up front and
// fills a single allocation — there is no intermediate buffer and no way
// for the two passes to disagree. Decode is
// zero-copy: byte-slice fields of the returned record alias the frame, so
// callers that outlive their frame must copy (Manager.ReadAt hands each
// caller a private frame; Manager.Scan frames alias the log device's
// retained entries, which are immutable until truncation).

const frameHeader = 8 // len + crc

// FrameLen returns the total length of the frame beginning at b[0], from its
// length prefix alone (no CRC check). It lets a stream of concatenated
// frames — e.g. a replication batch — be split without decoding.
func FrameLen(b []byte) (int, error) {
	if len(b) < frameHeader+1 {
		return 0, fmt.Errorf("wal: frame prefix too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	if n < frameHeader+1 || n > len(b) {
		return 0, fmt.Errorf("wal: frame length %d out of range (buffer %d)", n, len(b))
	}
	return n, nil
}

// Encode serializes a record into an exactly-sized framed byte slice with
// a single allocation.
func Encode(r Record) []byte {
	return AppendEncode(nil, r)
}

// AppendEncode appends the framed encoding of r to dst and returns the
// extended slice (append semantics). When dst has capacity for the frame no
// allocation happens at all — this is the zero-allocation hot path used by
// Manager.Append with pooled scratch buffers.
func AppendEncode(dst []byte, r Record) []byte {
	var sz enc
	encodeBody(&sz, r)
	total := frameHeader + sz.off
	base := len(dst)
	dst = growSlice(dst, total)
	w := enc{buf: dst[base : base+total], off: frameHeader}
	encodeBody(&w, r)
	frame := dst[base : base+total]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(total))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[frameHeader:]))
	return dst
}

// growSlice extends b by n bytes, reallocating only when capacity is short.
func growSlice(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[: len(b)+n : cap(b)]
	}
	newCap := 2*cap(b) + n
	if newCap < len(b)+n {
		newCap = len(b) + n
	}
	nb := make([]byte, len(b)+n, newCap)
	copy(nb, b)
	return nb
}

// enc drives both encoding passes with one concrete type: with buf == nil
// it only counts bytes (sizing pass); with buf set it lays them down. A
// single non-generic type keeps the hot path free of interface dispatch —
// and of the heap escapes Go's shared-shape generic stenciling would force
// on the encoder receivers.
type enc struct {
	buf []byte // nil during the sizing pass
	off int
}

func (e *enc) u8(v uint8) {
	if e.buf != nil {
		e.buf[e.off] = v
	}
	e.off++
}

func (e *enc) u64(v uint64) {
	if e.buf != nil {
		binary.LittleEndian.PutUint64(e.buf[e.off:e.off+8], v)
	}
	e.off += 8
}

func (e *enc) bytes(b []byte) {
	e.u64(uint64(len(b)))
	if e.buf != nil {
		copy(e.buf[e.off:], b)
	}
	e.off += len(b)
}

func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func encodeTxHdr(e *enc, h TxHdr) {
	e.u64(uint64(h.TxID))
	e.u64(uint64(h.PrevLSN))
}

func encodeFixes(e *enc, fixes []PtrFix) {
	e.u64(uint64(len(fixes)))
	for _, f := range fixes {
		e.u64(uint64(f.Addr))
		e.u64(uint64(f.NewPtr))
	}
}

func encodeAddrs(e *enc, addrs []word.Addr) {
	e.u64(uint64(len(addrs)))
	for _, a := range addrs {
		e.u64(uint64(a))
	}
}

// encodeBody lays out the type tag and payload of r into e. It is the single
// source of truth for the record wire format: the sizing and writing passes
// are the same code, so the precomputed size is exact by construction.
func encodeBody(e *enc, r Record) {
	e.u8(uint8(r.Type()))
	switch rec := r.(type) {
	case BeginRec:
		encodeTxHdr(e, rec.TxHdr)
	case UpdateRec:
		encodeTxHdr(e, rec.TxHdr)
		e.u64(uint64(rec.Addr))
		e.u64(uint64(rec.Obj))
		e.u8(rec.Flags)
		e.bytes(rec.Redo)
		e.bytes(rec.Undo)
	case CLRRec:
		encodeTxHdr(e, rec.TxHdr)
		e.u64(uint64(rec.Addr))
		e.u8(rec.Flags)
		e.bytes(rec.Redo)
		e.u64(uint64(rec.UndoNext))
	case AllocRec:
		encodeTxHdr(e, rec.TxHdr)
		e.u64(uint64(rec.Addr))
		e.u64(rec.Descriptor)
		e.u64(uint64(rec.SizeWords))
	case CommitRec:
		encodeTxHdr(e, rec.TxHdr)
	case AbortRec:
		encodeTxHdr(e, rec.TxHdr)
	case EndRec:
		encodeTxHdr(e, rec.TxHdr)
	case FlipRec:
		e.u64(rec.Epoch)
		e.u64(uint64(rec.FromLo))
		e.u64(uint64(rec.FromHi))
		e.u64(uint64(rec.ToLo))
		e.u64(uint64(rec.ToHi))
		e.u64(uint64(rec.RootObjFrom))
		e.u64(uint64(rec.RootObjTo))
	case CopyRec:
		e.u64(rec.Epoch)
		e.u64(uint64(rec.From))
		e.u64(uint64(rec.To))
		e.u64(uint64(rec.SizeWords))
		e.u64(rec.Descriptor)
		e.bytes(rec.Contents)
	case ScanRec:
		e.u64(rec.Epoch)
		e.u64(uint64(rec.Page))
		e.bool(rec.Full)
		e.u64(uint64(rec.ScanPtr))
		encodeFixes(e, rec.Fixes)
	case GCEndRec:
		e.u64(rec.Epoch)
	case BaseRec:
		encodeTxHdr(e, rec.TxHdr)
		e.u64(uint64(rec.Addr))
		e.bytes(rec.Object)
	case CompleteRec:
		encodeTxHdr(e, rec.TxHdr)
		e.u64(uint64(rec.Count))
	case V2SCopyRec:
		e.u64(uint64(rec.From))
		e.u64(uint64(rec.To))
		e.bytes(rec.Object)
	case SFixRec:
		e.u64(uint64(rec.Page))
		encodeFixes(e, rec.Fixes)
	case VFlipRec:
		e.u64(rec.Epoch)
		e.u64(uint64(rec.Moved))
	case PageFetchRec:
		e.u64(uint64(rec.Page))
	case EndWriteRec:
		e.u64(uint64(rec.Page))
		e.u64(uint64(rec.PageLSN))
	case CheckpointRec:
		encodeCheckpoint(e, rec)
	case LogicalRec:
		encodeTxHdr(e, rec.TxHdr)
		e.u64(uint64(rec.Addr))
		e.u64(uint64(rec.Obj))
		e.u64(rec.Delta)
	case PrepareRec:
		encodeTxHdr(e, rec.TxHdr)
	case TwoPCBeginRec:
		e.u64(rec.GID)
		encodeParticipants(e, rec.Parts)
	case TwoPCDecideRec:
		e.u64(rec.GID)
		e.bool(rec.Commit)
		encodeParticipants(e, rec.Parts)
	case TwoPCEndRec:
		e.u64(rec.GID)
	default:
		panic(fmt.Sprintf("wal: cannot encode %T", r))
	}
}

func encodeParticipants(e *enc, parts []TwoPCParticipant) {
	e.u64(uint64(len(parts)))
	for _, p := range parts {
		e.u64(uint64(p.Part))
		e.u64(uint64(p.TxID))
	}
}

func encodeCheckpoint(e *enc, c CheckpointRec) {
	e.u64(uint64(len(c.Dirty)))
	for _, dp := range c.Dirty {
		e.u64(uint64(dp.Page))
		e.u64(uint64(dp.RecLSN))
	}
	e.u64(uint64(len(c.Txs)))
	for _, tx := range c.Txs {
		e.u64(uint64(tx.TxID))
		e.u64(uint64(tx.FirstLSN))
		e.u64(uint64(tx.LastLSN))
		e.bool(tx.Aborting)
		e.bool(tx.Prepared)
		e.u64(uint64(tx.UndoNext))
		e.u64(uint64(len(tx.UTT)))
		for _, p := range tx.UTT {
			e.u64(uint64(p.At))
			e.u64(uint64(p.Orig))
			e.u64(uint64(p.Cur))
		}
	}
	e.u64(uint64(c.StableCur))
	e.u64(uint64(c.VolatileCur))
	e.u64(uint64(c.RootObj))
	e.u64(uint64(c.StableAlloc))
	e.u64(uint64(c.StableAllocHigh))
	g := c.GC
	e.bool(g.Active)
	e.u64(g.Epoch)
	e.u64(uint64(g.FlipLSN))
	e.u64(uint64(g.FromLo))
	e.u64(uint64(g.FromHi))
	e.u64(uint64(g.ToLo))
	e.u64(uint64(g.ToHi))
	e.u64(uint64(g.CopyPtr))
	e.u64(uint64(g.ScanPtr))
	e.u64(uint64(g.AllocPtr))
	e.u64(uint64(len(g.Scanned)))
	for _, s := range g.Scanned {
		e.bool(s)
	}
	encodeAddrs(e, g.LastObj)
	encodeAddrs(e, c.LS)
	encodeAddrs(e, c.SRem)
	e.u64(uint64(c.VolatileLo))
	e.u64(uint64(c.VolatileHi))
	e.u64(uint64(c.NextTx))
	e.u64(c.NextEpoch)
}

// Decode parses a framed record. It returns an error on truncation, CRC
// mismatch, or an unknown type tag.
//
// Decode reads in place: byte-slice fields of the returned record (Redo,
// Undo, Object, Contents) alias the frame rather than copying it. The frame
// must stay immutable for as long as the record is used; every producer in
// this repository satisfies that (log entries are retained verbatim until
// truncation, and ReadAt frames are private copies).
func Decode(frame []byte) (Record, error) {
	if len(frame) < frameHeader+1 {
		return nil, fmt.Errorf("wal: frame too short (%d bytes)", len(frame))
	}
	n := binary.LittleEndian.Uint32(frame[0:4])
	if int(n) != len(frame) {
		return nil, fmt.Errorf("wal: frame length %d != buffer %d", n, len(frame))
	}
	crc := binary.LittleEndian.Uint32(frame[4:8])
	payload := frame[frameHeader:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("wal: CRC mismatch")
	}
	d := decoder{buf: payload}
	t := Type(d.u8())
	var r Record
	switch t {
	case TBegin:
		r = BeginRec{TxHdr: d.txHdr()}
	case TUpdate:
		r = UpdateRec{TxHdr: d.txHdr(), Addr: word.Addr(d.u64()), Obj: word.Addr(d.u64()), Flags: d.u8(), Redo: d.bytes(), Undo: d.bytes()}
	case TCLR:
		r = CLRRec{TxHdr: d.txHdr(), Addr: word.Addr(d.u64()), Flags: d.u8(), Redo: d.bytes(), UndoNext: word.LSN(d.u64())}
	case TAlloc:
		r = AllocRec{TxHdr: d.txHdr(), Addr: word.Addr(d.u64()), Descriptor: d.u64(), SizeWords: int(d.u64())}
	case TCommit:
		r = CommitRec{TxHdr: d.txHdr()}
	case TAbort:
		r = AbortRec{TxHdr: d.txHdr()}
	case TEnd:
		r = EndRec{TxHdr: d.txHdr()}
	case TFlip:
		r = FlipRec{
			Epoch: d.u64(), FromLo: word.Addr(d.u64()), FromHi: word.Addr(d.u64()),
			ToLo: word.Addr(d.u64()), ToHi: word.Addr(d.u64()),
			RootObjFrom: word.Addr(d.u64()), RootObjTo: word.Addr(d.u64()),
		}
	case TCopy:
		r = CopyRec{Epoch: d.u64(), From: word.Addr(d.u64()), To: word.Addr(d.u64()),
			SizeWords: int(d.u64()), Descriptor: d.u64(), Contents: d.bytes()}
	case TScan:
		rec := ScanRec{Epoch: d.u64(), Page: word.PageID(d.u64()), Full: d.bool(), ScanPtr: word.Addr(d.u64())}
		rec.Fixes = d.fixes()
		r = rec
	case TGCEnd:
		r = GCEndRec{Epoch: d.u64()}
	case TBase:
		r = BaseRec{TxHdr: d.txHdr(), Addr: word.Addr(d.u64()), Object: d.bytes()}
	case TComplete:
		r = CompleteRec{TxHdr: d.txHdr(), Count: int(d.u64())}
	case TV2SCopy:
		r = V2SCopyRec{From: word.Addr(d.u64()), To: word.Addr(d.u64()), Object: d.bytes()}
	case TSFix:
		rec := SFixRec{Page: word.PageID(d.u64())}
		rec.Fixes = d.fixes()
		r = rec
	case TVFlip:
		r = VFlipRec{Epoch: d.u64(), Moved: int(d.u64())}
	case TPageFetch:
		r = PageFetchRec{Page: word.PageID(d.u64())}
	case TEndWrite:
		r = EndWriteRec{Page: word.PageID(d.u64()), PageLSN: word.LSN(d.u64())}
	case TCheckpoint:
		r = d.checkpoint()
	case TLogical:
		r = LogicalRec{TxHdr: d.txHdr(), Addr: word.Addr(d.u64()), Obj: word.Addr(d.u64()), Delta: d.u64()}
	case TPrepare:
		r = PrepareRec{TxHdr: d.txHdr()}
	case TTwoPCBegin:
		r = TwoPCBeginRec{GID: d.u64(), Parts: d.participants()}
	case TTwoPCDecide:
		r = TwoPCDecideRec{GID: d.u64(), Commit: d.bool(), Parts: d.participants()}
	case TTwoPCEnd:
		r = TwoPCEndRec{GID: d.u64()}
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", t)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("wal: %v record has %d trailing bytes", t, len(d.buf)-d.off)
	}
	return r, nil
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated record payload at offset %d", d.off)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off : d.off+8])
	d.off += 8
	return v
}

// bytes returns the length-prefixed field as a subslice of the frame
// (zero-copy; capacity clipped so appends cannot scribble on the frame).
func (d *decoder) bytes() []byte {
	n := d.u64()
	if d.err != nil || n > uint64(len(d.buf)-d.off) {
		d.fail()
		return nil
	}
	end := d.off + int(n)
	out := d.buf[d.off:end:end]
	d.off = end
	return out
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) txHdr() TxHdr {
	return TxHdr{TxID: word.TxID(d.u64()), PrevLSN: word.LSN(d.u64())}
}

func (d *decoder) fixes() []PtrFix {
	n := d.u64()
	if d.err != nil || n > uint64(len(d.buf)-d.off)/16 {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	fixes := make([]PtrFix, 0, n)
	for i := uint64(0); i < n; i++ {
		fixes = append(fixes, PtrFix{Addr: word.Addr(d.u64()), NewPtr: word.Addr(d.u64())})
	}
	return fixes
}

func (d *decoder) addrs() []word.Addr {
	n := d.u64()
	if d.err != nil || n > uint64(len(d.buf)-d.off)/8 {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]word.Addr, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, word.Addr(d.u64()))
	}
	return out
}

func (d *decoder) participants() []TwoPCParticipant {
	n := d.u64()
	if d.err != nil || n > uint64(len(d.buf)-d.off)/16 {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]TwoPCParticipant, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, TwoPCParticipant{Part: uint32(d.u64()), TxID: word.TxID(d.u64())})
	}
	return out
}

func (d *decoder) checkpoint() CheckpointRec {
	var c CheckpointRec
	nd := d.u64()
	for i := uint64(0); i < nd && d.err == nil; i++ {
		c.Dirty = append(c.Dirty, DirtyPage{Page: word.PageID(d.u64()), RecLSN: word.LSN(d.u64())})
	}
	nt := d.u64()
	for i := uint64(0); i < nt && d.err == nil; i++ {
		tx := TxEntry{
			TxID:     word.TxID(d.u64()),
			FirstLSN: word.LSN(d.u64()),
			LastLSN:  word.LSN(d.u64()),
			Aborting: d.bool(),
			Prepared: d.bool(),
			UndoNext: word.LSN(d.u64()),
		}
		nu := d.u64()
		for j := uint64(0); j < nu && d.err == nil; j++ {
			tx.UTT = append(tx.UTT, AddrPair{At: word.LSN(d.u64()), Orig: word.Addr(d.u64()), Cur: word.Addr(d.u64())})
		}
		c.Txs = append(c.Txs, tx)
	}
	c.StableCur = int(d.u64())
	c.VolatileCur = int(d.u64())
	c.RootObj = word.Addr(d.u64())
	c.StableAlloc = word.Addr(d.u64())
	c.StableAllocHigh = word.Addr(d.u64())
	c.GC.Active = d.bool()
	c.GC.Epoch = d.u64()
	c.GC.FlipLSN = word.LSN(d.u64())
	c.GC.FromLo = word.Addr(d.u64())
	c.GC.FromHi = word.Addr(d.u64())
	c.GC.ToLo = word.Addr(d.u64())
	c.GC.ToHi = word.Addr(d.u64())
	c.GC.CopyPtr = word.Addr(d.u64())
	c.GC.ScanPtr = word.Addr(d.u64())
	c.GC.AllocPtr = word.Addr(d.u64())
	ns := d.u64()
	if d.err == nil && ns <= uint64(len(d.buf)-d.off) {
		if ns > 0 {
			c.GC.Scanned = make([]bool, 0, ns)
			for i := uint64(0); i < ns; i++ {
				c.GC.Scanned = append(c.GC.Scanned, d.bool())
			}
		}
	} else if ns != 0 {
		d.fail()
	}
	c.GC.LastObj = d.addrs()
	c.LS = d.addrs()
	c.SRem = d.addrs()
	c.VolatileLo = word.Addr(d.u64())
	c.VolatileHi = word.Addr(d.u64())
	c.NextTx = word.TxID(d.u64())
	c.NextEpoch = d.u64()
	return c
}
