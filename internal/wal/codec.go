package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"stableheap/internal/word"
)

// Frame layout: [u32 frameLen][u32 crc][u8 type][payload…]. frameLen counts
// the whole frame; crc covers type+payload. A record's LSN is the byte
// offset of the frame start in the conceptual infinite log.

const frameHeader = 8 // len + crc

// Encode serializes a record into a framed byte slice.
func Encode(r Record) []byte {
	var e encoder
	e.u8(uint8(r.Type()))
	switch rec := r.(type) {
	case BeginRec:
		e.txHdr(rec.TxHdr)
	case UpdateRec:
		e.txHdr(rec.TxHdr)
		e.u64(uint64(rec.Addr))
		e.u64(uint64(rec.Obj))
		e.u8(rec.Flags)
		e.bytes(rec.Redo)
		e.bytes(rec.Undo)
	case CLRRec:
		e.txHdr(rec.TxHdr)
		e.u64(uint64(rec.Addr))
		e.u8(rec.Flags)
		e.bytes(rec.Redo)
		e.u64(uint64(rec.UndoNext))
	case AllocRec:
		e.txHdr(rec.TxHdr)
		e.u64(uint64(rec.Addr))
		e.u64(rec.Descriptor)
		e.u64(uint64(rec.SizeWords))
	case CommitRec:
		e.txHdr(rec.TxHdr)
	case AbortRec:
		e.txHdr(rec.TxHdr)
	case EndRec:
		e.txHdr(rec.TxHdr)
	case FlipRec:
		e.u64(rec.Epoch)
		e.u64(uint64(rec.FromLo))
		e.u64(uint64(rec.FromHi))
		e.u64(uint64(rec.ToLo))
		e.u64(uint64(rec.ToHi))
		e.u64(uint64(rec.RootObjFrom))
		e.u64(uint64(rec.RootObjTo))
	case CopyRec:
		e.u64(rec.Epoch)
		e.u64(uint64(rec.From))
		e.u64(uint64(rec.To))
		e.u64(uint64(rec.SizeWords))
		e.u64(rec.Descriptor)
		e.bytes(rec.Contents)
	case ScanRec:
		e.u64(rec.Epoch)
		e.u64(uint64(rec.Page))
		e.bool(rec.Full)
		e.u64(uint64(rec.ScanPtr))
		e.u64(uint64(len(rec.Fixes)))
		for _, f := range rec.Fixes {
			e.u64(uint64(f.Addr))
			e.u64(uint64(f.NewPtr))
		}
	case GCEndRec:
		e.u64(rec.Epoch)
	case BaseRec:
		e.txHdr(rec.TxHdr)
		e.u64(uint64(rec.Addr))
		e.bytes(rec.Object)
	case CompleteRec:
		e.txHdr(rec.TxHdr)
		e.u64(uint64(rec.Count))
	case V2SCopyRec:
		e.u64(uint64(rec.From))
		e.u64(uint64(rec.To))
		e.bytes(rec.Object)
	case SFixRec:
		e.u64(uint64(rec.Page))
		e.u64(uint64(len(rec.Fixes)))
		for _, f := range rec.Fixes {
			e.u64(uint64(f.Addr))
			e.u64(uint64(f.NewPtr))
		}
	case VFlipRec:
		e.u64(rec.Epoch)
		e.u64(uint64(rec.Moved))
	case PageFetchRec:
		e.u64(uint64(rec.Page))
	case EndWriteRec:
		e.u64(uint64(rec.Page))
		e.u64(uint64(rec.PageLSN))
	case CheckpointRec:
		e.checkpoint(rec)
	case LogicalRec:
		e.txHdr(rec.TxHdr)
		e.u64(uint64(rec.Addr))
		e.u64(uint64(rec.Obj))
		e.u64(rec.Delta)
	case PrepareRec:
		e.txHdr(rec.TxHdr)
	default:
		panic(fmt.Sprintf("wal: cannot encode %T", r))
	}
	return e.frame()
}

// Decode parses a framed record. It returns an error on truncation, CRC
// mismatch, or an unknown type tag.
func Decode(frame []byte) (Record, error) {
	if len(frame) < frameHeader+1 {
		return nil, fmt.Errorf("wal: frame too short (%d bytes)", len(frame))
	}
	n := binary.LittleEndian.Uint32(frame[0:4])
	if int(n) != len(frame) {
		return nil, fmt.Errorf("wal: frame length %d != buffer %d", n, len(frame))
	}
	crc := binary.LittleEndian.Uint32(frame[4:8])
	payload := frame[frameHeader:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("wal: CRC mismatch")
	}
	d := decoder{buf: payload}
	t := Type(d.u8())
	var r Record
	switch t {
	case TBegin:
		r = BeginRec{TxHdr: d.txHdr()}
	case TUpdate:
		r = UpdateRec{TxHdr: d.txHdr(), Addr: word.Addr(d.u64()), Obj: word.Addr(d.u64()), Flags: d.u8(), Redo: d.bytes(), Undo: d.bytes()}
	case TCLR:
		r = CLRRec{TxHdr: d.txHdr(), Addr: word.Addr(d.u64()), Flags: d.u8(), Redo: d.bytes(), UndoNext: word.LSN(d.u64())}
	case TAlloc:
		r = AllocRec{TxHdr: d.txHdr(), Addr: word.Addr(d.u64()), Descriptor: d.u64(), SizeWords: int(d.u64())}
	case TCommit:
		r = CommitRec{TxHdr: d.txHdr()}
	case TAbort:
		r = AbortRec{TxHdr: d.txHdr()}
	case TEnd:
		r = EndRec{TxHdr: d.txHdr()}
	case TFlip:
		r = FlipRec{
			Epoch: d.u64(), FromLo: word.Addr(d.u64()), FromHi: word.Addr(d.u64()),
			ToLo: word.Addr(d.u64()), ToHi: word.Addr(d.u64()),
			RootObjFrom: word.Addr(d.u64()), RootObjTo: word.Addr(d.u64()),
		}
	case TCopy:
		r = CopyRec{Epoch: d.u64(), From: word.Addr(d.u64()), To: word.Addr(d.u64()),
			SizeWords: int(d.u64()), Descriptor: d.u64(), Contents: d.bytes()}
	case TScan:
		rec := ScanRec{Epoch: d.u64(), Page: word.PageID(d.u64()), Full: d.bool(), ScanPtr: word.Addr(d.u64())}
		rec.Fixes = d.fixes()
		r = rec
	case TGCEnd:
		r = GCEndRec{Epoch: d.u64()}
	case TBase:
		r = BaseRec{TxHdr: d.txHdr(), Addr: word.Addr(d.u64()), Object: d.bytes()}
	case TComplete:
		r = CompleteRec{TxHdr: d.txHdr(), Count: int(d.u64())}
	case TV2SCopy:
		r = V2SCopyRec{From: word.Addr(d.u64()), To: word.Addr(d.u64()), Object: d.bytes()}
	case TSFix:
		rec := SFixRec{Page: word.PageID(d.u64())}
		rec.Fixes = d.fixes()
		r = rec
	case TVFlip:
		r = VFlipRec{Epoch: d.u64(), Moved: int(d.u64())}
	case TPageFetch:
		r = PageFetchRec{Page: word.PageID(d.u64())}
	case TEndWrite:
		r = EndWriteRec{Page: word.PageID(d.u64()), PageLSN: word.LSN(d.u64())}
	case TCheckpoint:
		r = d.checkpoint()
	case TLogical:
		r = LogicalRec{TxHdr: d.txHdr(), Addr: word.Addr(d.u64()), Obj: word.Addr(d.u64()), Delta: d.u64()}
	case TPrepare:
		r = PrepareRec{TxHdr: d.txHdr()}
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", t)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("wal: %v record has %d trailing bytes", t, len(d.buf)-d.off)
	}
	return r, nil
}

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) txHdr(h TxHdr) {
	e.u64(uint64(h.TxID))
	e.u64(uint64(h.PrevLSN))
}

func (e *encoder) checkpoint(c CheckpointRec) {
	e.u64(uint64(len(c.Dirty)))
	for _, dp := range c.Dirty {
		e.u64(uint64(dp.Page))
		e.u64(uint64(dp.RecLSN))
	}
	e.u64(uint64(len(c.Txs)))
	for _, tx := range c.Txs {
		e.u64(uint64(tx.TxID))
		e.u64(uint64(tx.FirstLSN))
		e.u64(uint64(tx.LastLSN))
		e.bool(tx.Aborting)
		e.bool(tx.Prepared)
		e.u64(uint64(tx.UndoNext))
		e.u64(uint64(len(tx.UTT)))
		for _, p := range tx.UTT {
			e.u64(uint64(p.Orig))
			e.u64(uint64(p.Cur))
		}
	}
	e.u64(uint64(c.StableCur))
	e.u64(uint64(c.VolatileCur))
	e.u64(uint64(c.RootObj))
	e.u64(uint64(c.StableAlloc))
	g := c.GC
	e.bool(g.Active)
	e.u64(g.Epoch)
	e.u64(uint64(g.FlipLSN))
	e.u64(uint64(g.FromLo))
	e.u64(uint64(g.FromHi))
	e.u64(uint64(g.ToLo))
	e.u64(uint64(g.ToHi))
	e.u64(uint64(g.CopyPtr))
	e.u64(uint64(g.ScanPtr))
	e.u64(uint64(g.AllocPtr))
	e.u64(uint64(len(g.Scanned)))
	for _, s := range g.Scanned {
		e.bool(s)
	}
	e.u64(uint64(len(g.LastObj)))
	for _, a := range g.LastObj {
		e.u64(uint64(a))
	}
	e.u64(uint64(len(c.LS)))
	for _, a := range c.LS {
		e.u64(uint64(a))
	}
	e.u64(uint64(len(c.SRem)))
	for _, a := range c.SRem {
		e.u64(uint64(a))
	}
	e.u64(uint64(c.VolatileLo))
	e.u64(uint64(c.VolatileHi))
	e.u64(uint64(c.NextTx))
	e.u64(c.NextEpoch)
}

func (e *encoder) frame() []byte {
	frame := make([]byte, frameHeader+len(e.buf))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(frame)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(e.buf))
	copy(frame[frameHeader:], e.buf)
	return frame
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated record payload at offset %d", d.off)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off : d.off+8])
	d.off += 8
	return v
}

func (d *decoder) bytes() []byte {
	n := d.u64()
	if d.err != nil || d.off+int(n) > len(d.buf) {
		d.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+int(n)])
	d.off += int(n)
	return out
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) txHdr() TxHdr {
	return TxHdr{TxID: word.TxID(d.u64()), PrevLSN: word.LSN(d.u64())}
}

func (d *decoder) fixes() []PtrFix {
	n := d.u64()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	fixes := make([]PtrFix, 0, n)
	for i := uint64(0); i < n; i++ {
		fixes = append(fixes, PtrFix{Addr: word.Addr(d.u64()), NewPtr: word.Addr(d.u64())})
	}
	return fixes
}

func (d *decoder) addrs() []word.Addr {
	n := d.u64()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]word.Addr, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, word.Addr(d.u64()))
	}
	return out
}

func (d *decoder) checkpoint() CheckpointRec {
	var c CheckpointRec
	nd := d.u64()
	for i := uint64(0); i < nd && d.err == nil; i++ {
		c.Dirty = append(c.Dirty, DirtyPage{Page: word.PageID(d.u64()), RecLSN: word.LSN(d.u64())})
	}
	nt := d.u64()
	for i := uint64(0); i < nt && d.err == nil; i++ {
		tx := TxEntry{
			TxID:     word.TxID(d.u64()),
			FirstLSN: word.LSN(d.u64()),
			LastLSN:  word.LSN(d.u64()),
			Aborting: d.bool(),
			Prepared: d.bool(),
			UndoNext: word.LSN(d.u64()),
		}
		nu := d.u64()
		for j := uint64(0); j < nu && d.err == nil; j++ {
			tx.UTT = append(tx.UTT, AddrPair{Orig: word.Addr(d.u64()), Cur: word.Addr(d.u64())})
		}
		c.Txs = append(c.Txs, tx)
	}
	c.StableCur = int(d.u64())
	c.VolatileCur = int(d.u64())
	c.RootObj = word.Addr(d.u64())
	c.StableAlloc = word.Addr(d.u64())
	c.GC.Active = d.bool()
	c.GC.Epoch = d.u64()
	c.GC.FlipLSN = word.LSN(d.u64())
	c.GC.FromLo = word.Addr(d.u64())
	c.GC.FromHi = word.Addr(d.u64())
	c.GC.ToLo = word.Addr(d.u64())
	c.GC.ToHi = word.Addr(d.u64())
	c.GC.CopyPtr = word.Addr(d.u64())
	c.GC.ScanPtr = word.Addr(d.u64())
	c.GC.AllocPtr = word.Addr(d.u64())
	ns := d.u64()
	if d.err == nil && ns <= uint64(len(d.buf)) {
		if ns > 0 {
			c.GC.Scanned = make([]bool, 0, ns)
			for i := uint64(0); i < ns; i++ {
				c.GC.Scanned = append(c.GC.Scanned, d.bool())
			}
		}
	} else if ns != 0 {
		d.fail()
	}
	c.GC.LastObj = d.addrs()
	c.LS = d.addrs()
	c.SRem = d.addrs()
	c.VolatileLo = word.Addr(d.u64())
	c.VolatileHi = word.Addr(d.u64())
	c.NextTx = word.TxID(d.u64())
	c.NextEpoch = d.u64()
	return c
}
