package wal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stableheap/internal/word"
)

// TestDecodeNeverPanicsOnGarbage feeds random byte soup to the decoder:
// it must reject cleanly (error), never panic or over-read.
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on %x: %v", data, r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanicsOnMutatedFrames flips random bits/bytes in valid
// frames: decoding must either detect the corruption or produce a record —
// never panic. (A flipped length prefix or truncated payload is the
// classic torn-write shape.)
func TestDecodeNeverPanicsOnMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	recs := []Record{
		UpdateRec{TxHdr: TxHdr{TxID: 5, PrevLSN: 9}, Addr: 0x1000, Redo: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Undo: []byte{8, 7, 6, 5}},
		CheckpointRec{
			Dirty: []DirtyPage{{Page: 3, RecLSN: 44}},
			Txs:   []TxEntry{{TxID: 5, FirstLSN: 2, LastLSN: 90, UTT: []AddrPair{{Orig: 1, Cur: 2}}}},
			GC:    GCState{Active: true, Scanned: []bool{true, false}},
		},
		ScanRec{Epoch: 2, Page: 7, Fixes: []PtrFix{{Addr: 8, NewPtr: 16}}},
		CopyRec{Epoch: 1, From: 8, To: 16, SizeWords: 2, Descriptor: 7, Contents: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		BaseRec{TxHdr: TxHdr{TxID: 2}, Addr: 0x40, Object: make([]byte, 24)},
	}
	for round := 0; round < 3000; round++ {
		frame := append([]byte(nil), Encode(recs[rng.Intn(len(recs))])...)
		switch rng.Intn(3) {
		case 0: // flip a bit
			frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
		case 1: // truncate
			frame = frame[:rng.Intn(len(frame))]
		case 2: // splice garbage into the middle
			if len(frame) > 4 {
				frame[4+rng.Intn(len(frame)-4)] = byte(rng.Intn(256))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on mutated frame %x: %v", frame, r)
				}
			}()
			_, _ = Decode(frame)
		}()
	}
}

// TestEncodeDecodeRandomRecordsProperty round-trips randomly shaped
// records of every transactional type.
func TestEncodeDecodeRandomRecordsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	for i := 0; i < 500; i++ {
		var r Record
		switch rng.Intn(6) {
		case 0:
			r = UpdateRec{TxHdr: TxHdr{TxID: word.TxID(1 + rng.Uint64()%100), PrevLSN: word.LSN(1 + rng.Uint64()%1000)},
				Addr: word.Addr(8 * (1 + rng.Uint64()%1000)), Flags: uint8(rng.Intn(4)),
				Redo: randBytes(1 + rng.Intn(64)), Undo: randBytes(1 + rng.Intn(64))}
		case 1:
			r = CLRRec{TxHdr: TxHdr{TxID: 1}, Addr: 8, Flags: uint8(rng.Intn(4)),
				Redo: randBytes(8), UndoNext: word.LSN(rng.Uint64() % 500)}
		case 2:
			r = BaseRec{TxHdr: TxHdr{TxID: 2}, Addr: 8, Object: randBytes(8 * (1 + rng.Intn(32)))}
		case 3:
			r = V2SCopyRec{From: 8, To: 16, Object: randBytes(8 * (1 + rng.Intn(32)))}
		case 4:
			fixes := make([]PtrFix, rng.Intn(20))
			for j := range fixes {
				fixes[j] = PtrFix{Addr: word.Addr(8 * (1 + rng.Uint64()%500)), NewPtr: word.Addr(8 * (1 + rng.Uint64()%500))}
			}
			r = ScanRec{Epoch: rng.Uint64(), Page: word.PageID(1 + rng.Uint64()%100), Full: rng.Intn(2) == 0,
				ScanPtr: word.Addr(8 * (rng.Uint64() % 500)), Fixes: fixes}
		default:
			r = CopyRec{Epoch: rng.Uint64(), From: 8, To: 16,
				SizeWords: 1 + rng.Intn(100), Descriptor: rng.Uint64(), Contents: randBytes(rng.Intn(64))}
		}
		got, err := Decode(Encode(r))
		if err != nil {
			t.Fatalf("round %d: decode: %v", i, err)
		}
		a, b := Encode(got), Encode(r)
		if string(a) != string(b) {
			t.Fatalf("round %d: re-encode differs for %T", i, r)
		}
	}
}
