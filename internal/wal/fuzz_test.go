package wal

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"

	"stableheap/internal/word"
)

// TestDecodeNeverPanicsOnGarbage feeds random byte soup to the decoder:
// it must reject cleanly (error), never panic or over-read.
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on %x: %v", data, r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanicsOnMutatedFrames flips random bits/bytes in valid
// frames: decoding must either detect the corruption or produce a record —
// never panic. (A flipped length prefix or truncated payload is the
// classic torn-write shape.)
func TestDecodeNeverPanicsOnMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	recs := []Record{
		UpdateRec{TxHdr: TxHdr{TxID: 5, PrevLSN: 9}, Addr: 0x1000, Redo: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Undo: []byte{8, 7, 6, 5}},
		CheckpointRec{
			Dirty: []DirtyPage{{Page: 3, RecLSN: 44}},
			Txs:   []TxEntry{{TxID: 5, FirstLSN: 2, LastLSN: 90, UTT: []AddrPair{{Orig: 1, Cur: 2}}}},
			GC:    GCState{Active: true, Scanned: []bool{true, false}},
		},
		ScanRec{Epoch: 2, Page: 7, Fixes: []PtrFix{{Addr: 8, NewPtr: 16}}},
		CopyRec{Epoch: 1, From: 8, To: 16, SizeWords: 2, Descriptor: 7, Contents: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		BaseRec{TxHdr: TxHdr{TxID: 2}, Addr: 0x40, Object: make([]byte, 24)},
	}
	for round := 0; round < 3000; round++ {
		frame := append([]byte(nil), Encode(recs[rng.Intn(len(recs))])...)
		switch rng.Intn(3) {
		case 0: // flip a bit
			frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
		case 1: // truncate
			frame = frame[:rng.Intn(len(frame))]
		case 2: // splice garbage into the middle
			if len(frame) > 4 {
				frame[4+rng.Intn(len(frame)-4)] = byte(rng.Intn(256))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on mutated frame %x: %v", frame, r)
				}
			}()
			_, _ = Decode(frame)
		}()
	}
}

// TestEncodeDecodeRandomRecordsProperty round-trips randomly shaped
// records of every transactional type.
func TestEncodeDecodeRandomRecordsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	for i := 0; i < 500; i++ {
		var r Record
		switch rng.Intn(6) {
		case 0:
			r = UpdateRec{TxHdr: TxHdr{TxID: word.TxID(1 + rng.Uint64()%100), PrevLSN: word.LSN(1 + rng.Uint64()%1000)},
				Addr: word.Addr(8 * (1 + rng.Uint64()%1000)), Flags: uint8(rng.Intn(4)),
				Redo: randBytes(1 + rng.Intn(64)), Undo: randBytes(1 + rng.Intn(64))}
		case 1:
			r = CLRRec{TxHdr: TxHdr{TxID: 1}, Addr: 8, Flags: uint8(rng.Intn(4)),
				Redo: randBytes(8), UndoNext: word.LSN(rng.Uint64() % 500)}
		case 2:
			r = BaseRec{TxHdr: TxHdr{TxID: 2}, Addr: 8, Object: randBytes(8 * (1 + rng.Intn(32)))}
		case 3:
			r = V2SCopyRec{From: 8, To: 16, Object: randBytes(8 * (1 + rng.Intn(32)))}
		case 4:
			fixes := make([]PtrFix, rng.Intn(20))
			for j := range fixes {
				fixes[j] = PtrFix{Addr: word.Addr(8 * (1 + rng.Uint64()%500)), NewPtr: word.Addr(8 * (1 + rng.Uint64()%500))}
			}
			r = ScanRec{Epoch: rng.Uint64(), Page: word.PageID(1 + rng.Uint64()%100), Full: rng.Intn(2) == 0,
				ScanPtr: word.Addr(8 * (rng.Uint64() % 500)), Fixes: fixes}
		default:
			r = CopyRec{Epoch: rng.Uint64(), From: 8, To: 16,
				SizeWords: 1 + rng.Intn(100), Descriptor: rng.Uint64(), Contents: randBytes(rng.Intn(64))}
		}
		got, err := Decode(Encode(r))
		if err != nil {
			t.Fatalf("round %d: decode: %v", i, err)
		}
		a, b := Encode(got), Encode(r)
		if string(a) != string(b) {
			t.Fatalf("round %d: re-encode differs for %T", i, r)
		}
	}
}

// TestScanCopyRoundTripZeroCopy round-trips randomly shaped ScanRec.Fixes
// and CopyRec.Contents through the zero-copy decoder. Decoded byte fields
// must alias the frame (no copy) with their capacity clipped to length, so
// an append by the caller can never scribble over neighbouring frame bytes.
func TestScanCopyRoundTripZeroCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	for i := 0; i < 1500; i++ {
		fixes := make([]PtrFix, rng.Intn(40))
		for j := range fixes {
			fixes[j] = PtrFix{Addr: word.Addr(rng.Uint64()), NewPtr: word.Addr(rng.Uint64())}
		}
		sr := ScanRec{Epoch: rng.Uint64(), Page: word.PageID(rng.Uint64() % 1e6),
			Full: rng.Intn(2) == 0, ScanPtr: word.Addr(rng.Uint64()), Fixes: fixes}
		got, err := Decode(Encode(sr))
		if err != nil {
			t.Fatalf("round %d: scan decode: %v", i, err)
		}
		gs := got.(ScanRec)
		if len(gs.Fixes) != len(fixes) {
			t.Fatalf("round %d: %d fixes decoded, want %d", i, len(gs.Fixes), len(fixes))
		}
		for j := range fixes {
			if gs.Fixes[j] != fixes[j] {
				t.Fatalf("round %d: fix %d = %+v, want %+v", i, j, gs.Fixes[j], fixes[j])
			}
		}

		size := 1 + rng.Intn(100)
		var contents []byte
		if rng.Intn(2) == 0 { // content-carrying half the time
			contents = randBytes(word.WordsToBytes(size))
		}
		cr := CopyRec{Epoch: rng.Uint64(), From: word.Addr(8 * (1 + rng.Uint64()%1000)),
			To: word.Addr(8 * (1 + rng.Uint64()%1000)), SizeWords: size,
			Descriptor: rng.Uint64(), Contents: contents}
		frame := Encode(cr)
		got2, err := Decode(frame)
		if err != nil {
			t.Fatalf("round %d: copy decode: %v", i, err)
		}
		gc := got2.(CopyRec)
		if len(gc.Contents) != len(contents) {
			t.Fatalf("round %d: %d content bytes decoded, want %d", i, len(gc.Contents), len(contents))
		}
		for j := range contents {
			if gc.Contents[j] != contents[j] {
				t.Fatalf("round %d: content byte %d differs", i, j)
			}
		}
		if len(gc.Contents) > 0 {
			alias := false
			for off := range frame {
				if &frame[off] == &gc.Contents[0] {
					alias = true
					break
				}
			}
			if !alias {
				t.Fatalf("round %d: decoded Contents does not alias the frame", i)
			}
			if cap(gc.Contents) != len(gc.Contents) {
				t.Fatalf("round %d: aliased Contents must be capacity-clipped (len %d cap %d)",
					i, len(gc.Contents), cap(gc.Contents))
			}
		}
	}
}

// TestDecodeBoundsCRCValidMutations re-seals the CRC after each mutation so
// the corruption reaches the field decoders (length prefixes, fix counts)
// instead of being stopped at the checksum: the zero-copy decoder's bounds
// checks must reject or decode cleanly — never panic or over-read.
func TestDecodeBoundsCRCValidMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	base := []Record{
		ScanRec{Epoch: 9, Page: 4, Full: true, ScanPtr: 128,
			Fixes: []PtrFix{{Addr: 8, NewPtr: 16}, {Addr: 24, NewPtr: 32}, {Addr: 40, NewPtr: 48}}},
		CopyRec{Epoch: 3, From: 8, To: 512, SizeWords: 4, Descriptor: 77,
			Contents: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
				17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32}},
		SFixRec{Page: 2, Fixes: []PtrFix{{Addr: 8, NewPtr: 16}}},
		UpdateRec{TxHdr: TxHdr{TxID: 1, PrevLSN: 3}, Addr: 64,
			Redo: make([]byte, 16), Undo: make([]byte, 8)},
	}
	for round := 0; round < 4000; round++ {
		frame := append([]byte(nil), Encode(base[rng.Intn(len(base))])...)
		for k := 0; k <= rng.Intn(3); k++ {
			frame[frameHeader+rng.Intn(len(frame)-frameHeader)] ^= byte(1 << uint(rng.Intn(8)))
		}
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[frameHeader:]))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on CRC-valid mutant %x: %v", frame, r)
				}
			}()
			if rec, err := Decode(frame); err == nil {
				_ = Encode(rec) // whatever decoded must re-encode cleanly
			}
		}()
	}
}

// FuzzDecode is a native fuzz target over raw frames: any frame the decoder
// accepts must re-encode to the identical bytes (the zero-copy decode and
// the single-allocation encode are exact inverses).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(ScanRec{Epoch: 2, Page: 7, Fixes: []PtrFix{{Addr: 8, NewPtr: 16}}}))
	f.Add(Encode(CopyRec{Epoch: 1, From: 8, To: 16, SizeWords: 2, Descriptor: 7,
		Contents: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}}))
	f.Add(Encode(CopyRec{Epoch: 1, From: 8, To: 16, SizeWords: 2, Descriptor: 7}))
	f.Add(Encode(UpdateRec{TxHdr: TxHdr{TxID: 5, PrevLSN: 9}, Addr: 0x1000,
		Redo: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Undo: []byte{8, 7, 6, 5}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			return
		}
		frame := Encode(rec)
		if string(frame) != string(data) {
			t.Fatalf("accepted frame does not re-encode identically:\nin  %x\nout %x", data, frame)
		}
	})
}
