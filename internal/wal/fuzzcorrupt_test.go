package wal

import (
	"errors"
	"testing"

	"stableheap/internal/storage"
	"stableheap/internal/word"
)

// FuzzLogScanCorrupt is the detection contract over a whole log image:
// fuzz-driven bit flips are sprayed into the stable frames of a valid log,
// and a scan from the truncation point must then either
//
//   - surface a typed corruption error (RepairTornTail refuses, or the
//     scan panics with *storage.CorruptFrameError), or
//   - yield only frames whose CRC still verifies, each of which re-encodes
//     byte-identically to what the device holds.
//
// What it must never do is return a record that differs from the bytes on
// the device, or fail with an untyped error/panic — "successful but
// wrong" and "crashed without naming the frame" are both bugs.
func FuzzLogScanCorrupt(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0xff})
	f.Add([]byte{1, 9, 0x01, 2, 40, 0x80})
	f.Add([]byte{3, 0, 0x10, 3, 1, 0x10, 3, 2, 0x10})
	f.Fuzz(func(t *testing.T, data []byte) {
		dev := storage.NewLog(1 << 20)
		m := NewManager(dev)
		recs := []Record{
			UpdateRec{TxHdr: TxHdr{TxID: 1}, Addr: 64, Redo: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Undo: []byte{9, 10, 11, 12, 13, 14, 15, 16}},
			CommitRec{TxHdr: TxHdr{TxID: 1, PrevLSN: 1}},
			ScanRec{Epoch: 4, Page: 2, Fixes: []PtrFix{{Addr: 8, NewPtr: 16}}},
			CopyRec{Epoch: 4, From: 8, To: 16, SizeWords: 1, Descriptor: 3, Contents: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
			CheckpointRec{Dirty: []DirtyPage{{Page: 2, RecLSN: 1}}},
		}
		lsns := make([]word.LSN, 0, len(recs))
		for _, r := range recs {
			lsns = append(lsns, m.Append(r))
		}
		m.ForceAll()

		// Spray the fuzz input over the image as (frame, offset, mask)
		// triples. Mask 0 would be a no-op flip; force at least one bit.
		for i := 0; i+2 < len(data); i += 3 {
			frame := lsns[int(data[i])%len(lsns)]
			off, mask := int(data[i+1]), data[i+2]|1
			dev.CorruptEntry(frame, func(b []byte) {
				b[off%len(b)] ^= mask
			})
		}

		torn, err := m.RepairTornTail(dev.TruncLSN())
		if err != nil {
			var cf *storage.CorruptFrameError
			if !errors.As(err, &cf) || !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("repair surfaced an untyped error: %v", err)
			}
			return // detected — the acceptable outcome
		}
		// A flip in the last frame's length prefix makes it physically
		// incomplete; repair legitimately rewinds the tail over it.
		want := len(lsns)
		if torn != word.NilLSN {
			want = 0
			for _, l := range lsns {
				if l < torn {
					want++
				}
			}
		}

		defer func() {
			if r := recover(); r != nil {
				if _, ok := storage.AsDeviceError(r); !ok {
					t.Fatalf("scan panicked untypedly: %v", r)
				}
			}
		}()
		seen := 0
		m.Scan(dev.TruncLSN(), false, func(lsn word.LSN, rec Record) bool {
			raw, ok := dev.ReadAt(lsn)
			if !ok {
				t.Fatalf("scan yielded LSN %d the device cannot read", lsn)
			}
			if got := Encode(rec); string(got) != string(raw) {
				t.Fatalf("LSN %d: scanned record does not match device bytes:\ndev %x\nenc %x", lsn, raw, got)
			}
			seen++
			return true
		})
		// A clean pass must have seen every frame the repair retained
		// (flips that cancel out, or an empty fuzz input, keep all five).
		if seen != want {
			t.Fatalf("clean scan saw %d of %d retained frames (torn=%d)", seen, want, torn)
		}
	})
}
