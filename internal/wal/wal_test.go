package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
	"testing/quick"

	"stableheap/internal/storage"
	"stableheap/internal/word"
)

func roundTrip(t *testing.T, r Record) {
	t.Helper()
	frame := Encode(r)
	got, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode(%v): %v", r.Type(), err)
	}
	if !reflect.DeepEqual(normalize(got), normalize(r)) {
		t.Fatalf("round trip mismatch for %v:\n got %#v\nwant %#v", r.Type(), got, r)
	}
}

// normalize maps nil and empty slices to a canonical form for comparison.
func normalize(r Record) Record {
	switch rec := r.(type) {
	case UpdateRec:
		rec.Redo = canon(rec.Redo)
		rec.Undo = canon(rec.Undo)
		return rec
	case CLRRec:
		rec.Redo = canon(rec.Redo)
		return rec
	case CopyRec:
		rec.Contents = canon(rec.Contents)
		return rec
	case BaseRec:
		rec.Object = canon(rec.Object)
		return rec
	case V2SCopyRec:
		rec.Object = canon(rec.Object)
		return rec
	case ScanRec:
		rec.Fixes = canonFixes(rec.Fixes)
		return rec
	case SFixRec:
		rec.Fixes = canonFixes(rec.Fixes)
		return rec
	}
	return r
}

func canonFixes(f []PtrFix) []PtrFix {
	if len(f) == 0 {
		return []PtrFix{}
	}
	return f
}

func canon(b []byte) []byte {
	if len(b) == 0 {
		return []byte{}
	}
	return b
}

func TestRoundTripAllTypes(t *testing.T) {
	recs := []Record{
		BeginRec{TxHdr{TxID: 7}},
		UpdateRec{TxHdr: TxHdr{TxID: 7, PrevLSN: 10}, Addr: 0x1000, Obj: 0xff8, Flags: UFPtrSlot, Redo: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Undo: []byte{8, 7, 6, 5, 4, 3, 2, 1}},
		CLRRec{TxHdr: TxHdr{TxID: 7, PrevLSN: 20}, Addr: 0x1008, Redo: []byte{9, 9}, UndoNext: 5},
		AllocRec{TxHdr: TxHdr{TxID: 7, PrevLSN: 30}, Addr: 0x2000, Descriptor: 0xdeadbeef, SizeWords: 12},
		CommitRec{TxHdr{TxID: 7, PrevLSN: 40}},
		AbortRec{TxHdr{TxID: 8, PrevLSN: 41}},
		EndRec{TxHdr{TxID: 7, PrevLSN: 50}},
		FlipRec{Epoch: 3, FromLo: 0x10000, FromHi: 0x20000, ToLo: 0x20000, ToHi: 0x30000, RootObjFrom: 0x10040, RootObjTo: 0x20000},
		CopyRec{Epoch: 3, From: 0x10080, To: 0x20040, SizeWords: 4, Descriptor: 0x1234},
		CopyRec{Epoch: 3, From: 0x100c0, To: 0x20060, SizeWords: 2, Descriptor: 0x99, Contents: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}},
		ScanRec{Epoch: 3, Page: 32, Fixes: []PtrFix{{Addr: 0x20048, NewPtr: 0x20090}, {Addr: 0x20050, NewPtr: 0x20100}}},
		ScanRec{Epoch: 3, Page: 33},
		GCEndRec{Epoch: 3},
		BaseRec{TxHdr: TxHdr{TxID: 9, PrevLSN: 60}, Addr: 0x40000, Object: []byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0}},
		CompleteRec{TxHdr: TxHdr{TxID: 9, PrevLSN: 70}, Count: 5},
		V2SCopyRec{From: 0x40000, To: 0x11000, Object: []byte{3, 0, 0, 0, 0, 0, 0, 0}},
		SFixRec{Page: 17, Fixes: []PtrFix{{Addr: 0x11008, NewPtr: 0x11010}}},
		VFlipRec{Epoch: 2, Moved: 9},
		LogicalRec{TxHdr: TxHdr{TxID: 4, PrevLSN: 51}, Addr: 0x2040, Obj: 0x2000, Delta: ^uint64(4)},
		PrepareRec{TxHdr{TxID: 4, PrevLSN: 52}},
		TwoPCBeginRec{GID: 3, Parts: []TwoPCParticipant{{Part: 0, TxID: 11}, {Part: 2, TxID: 7}}},
		TwoPCBeginRec{GID: 4},
		TwoPCDecideRec{GID: 3, Commit: true, Parts: []TwoPCParticipant{{Part: 0, TxID: 11}, {Part: 2, TxID: 7}}},
		TwoPCDecideRec{GID: 4, Commit: false},
		TwoPCEndRec{GID: 3},
		PageFetchRec{Page: 88},
		EndWriteRec{Page: 88, PageLSN: 123},
		CheckpointRec{
			Dirty:       []DirtyPage{{Page: 3, RecLSN: 44}, {Page: 9, RecLSN: 50}},
			Txs:         []TxEntry{{TxID: 5, FirstLSN: 2, LastLSN: 90, Aborting: true, Prepared: true, UndoNext: 80, UTT: []AddrPair{{Orig: 0x100, Cur: 0x200}}}},
			StableCur:   1,
			VolatileCur: 0,
			RootObj:     0x20000,
			StableAlloc: 0x21000,
			GC: GCState{Active: true, Epoch: 3, FlipLSN: 33, FromLo: 0x10000, FromHi: 0x20000,
				ToLo: 0x20000, ToHi: 0x30000, CopyPtr: 0x20400, ScanPtr: 0x20200, AllocPtr: 0x2ff00,
				Scanned: []bool{true, false, true}, LastObj: []word.Addr{0x20010, 0, 0x20800}},
			LS:        []word.Addr{0x40010, 0x40080},
			SRem:      []word.Addr{0x20048},
			NextTx:    10,
			NextEpoch: 4,
		},
		CheckpointRec{}, // empty checkpoint must survive too
	}
	for _, r := range recs {
		roundTrip(t, r)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	frame := Encode(CommitRec{TxHdr{TxID: 1, PrevLSN: 2}})
	// Flip a payload bit: CRC must catch it.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xff
	if _, err := Decode(bad); err == nil {
		t.Fatal("corrupted payload must fail CRC")
	}
	// Truncate the frame: length check must catch it.
	if _, err := Decode(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated frame must be rejected")
	}
	// Too-short buffer.
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Fatal("short buffer must be rejected")
	}
}

// rawFrame wraps an arbitrary payload (type tag + body) in a valid frame
// header, for tests that need well-framed but semantically bogus records.
func rawFrame(payload []byte) []byte {
	frame := make([]byte, frameHeader+len(payload))
	copy(frame[frameHeader:], payload)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(frame)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[frameHeader:]))
	return frame
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	payload := make([]byte, 9)
	payload[0] = uint8(maxType) + 5
	binary.LittleEndian.PutUint64(payload[1:], 1)
	if _, err := Decode(rawFrame(payload)); err == nil {
		t.Fatal("unknown type must be rejected")
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	payload := make([]byte, 17)
	payload[0] = uint8(TGCEnd)
	binary.LittleEndian.PutUint64(payload[1:], 1)
	binary.LittleEndian.PutUint64(payload[9:], 99) // junk beyond the GCEnd payload
	if _, err := Decode(rawFrame(payload)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(tx uint32, prev uint32, addr uint32, redo, undo []byte) bool {
		r := UpdateRec{
			TxHdr: TxHdr{TxID: word.TxID(tx), PrevLSN: word.LSN(prev)},
			Addr:  word.Addr(addr),
			Redo:  redo, Undo: undo,
		}
		got, err := Decode(Encode(r))
		if err != nil {
			return false
		}
		u, ok := got.(UpdateRec)
		return ok && u.TxID == r.TxID && u.PrevLSN == r.PrevLSN && u.Addr == r.Addr &&
			bytes.Equal(u.Redo, redo) && bytes.Equal(u.Undo, undo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRoundTripProperty(t *testing.T) {
	f := func(pages []uint16, lsns []uint32, scanned []bool) bool {
		c := CheckpointRec{NextTx: 3, NextEpoch: 7}
		for i, p := range pages {
			lsn := word.LSN(1)
			if i < len(lsns) {
				lsn = word.LSN(lsns[i]) + 1
			}
			c.Dirty = append(c.Dirty, DirtyPage{Page: word.PageID(p), RecLSN: lsn})
		}
		c.GC.Scanned = scanned
		got, err := Decode(Encode(c))
		if err != nil {
			return false
		}
		g, ok := got.(CheckpointRec)
		if !ok || len(g.Dirty) != len(c.Dirty) || len(g.GC.Scanned) != len(scanned) {
			return false
		}
		for i := range c.Dirty {
			if g.Dirty[i] != c.Dirty[i] {
				return false
			}
		}
		for i := range scanned {
			if g.GC.Scanned[i] != scanned[i] {
				return false
			}
		}
		return g.NextTx == 3 && g.NextEpoch == 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestManagerAppendScan(t *testing.T) {
	m := NewManager(storage.NewLog(0))
	l1 := m.Append(BeginRec{TxHdr{TxID: 1}})
	l2 := m.Append(UpdateRec{TxHdr: TxHdr{TxID: 1, PrevLSN: l1}, Addr: 8, Redo: []byte{1}, Undo: []byte{0}})
	l3 := m.Append(CommitRec{TxHdr{TxID: 1, PrevLSN: l2}})
	if !(l1 < l2 && l2 < l3) {
		t.Fatal("LSNs must increase")
	}
	var types []Type
	m.Scan(l1, false, func(_ word.LSN, r Record) bool {
		types = append(types, r.Type())
		return true
	})
	want := []Type{TBegin, TUpdate, TCommit}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("scan types = %v, want %v", types, want)
	}
}

func TestManagerStableOnlyScanHidesTail(t *testing.T) {
	m := NewManager(storage.NewLog(0))
	l1 := m.Append(BeginRec{TxHdr{TxID: 1}})
	m.Force(l1)
	m.Append(CommitRec{TxHdr{TxID: 1, PrevLSN: l1}})
	n := 0
	m.Scan(1, true, func(word.LSN, Record) bool { n++; return true })
	if n != 1 {
		t.Fatalf("stable-only scan saw %d records, want 1", n)
	}
}

func TestManagerReadAt(t *testing.T) {
	m := NewManager(storage.NewLog(0))
	lsn := m.Append(GCEndRec{Epoch: 9})
	r, err := m.ReadAt(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := r.(GCEndRec); !ok || g.Epoch != 9 {
		t.Fatalf("got %#v", r)
	}
	if _, err := m.ReadAt(lsn + 1); err == nil {
		t.Fatal("ReadAt mid-record must error")
	}
}

func TestManagerPrevLSNChainWalk(t *testing.T) {
	m := NewManager(storage.NewLog(0))
	l1 := m.Append(BeginRec{TxHdr{TxID: 4}})
	l2 := m.Append(UpdateRec{TxHdr: TxHdr{TxID: 4, PrevLSN: l1}, Addr: 8, Redo: []byte{1}, Undo: []byte{0}})
	l3 := m.Append(UpdateRec{TxHdr: TxHdr{TxID: 4, PrevLSN: l2}, Addr: 16, Redo: []byte{2}, Undo: []byte{1}})
	// Walk the chain backwards from l3.
	var visited []word.LSN
	for lsn := l3; lsn != word.NilLSN; {
		visited = append(visited, lsn)
		switch r := m.MustReadAt(lsn).(type) {
		case UpdateRec:
			lsn = r.PrevLSN
		case BeginRec:
			lsn = word.NilLSN
		default:
			t.Fatalf("unexpected record %T", r)
		}
	}
	if !reflect.DeepEqual(visited, []word.LSN{l3, l2, l1}) {
		t.Fatalf("chain walk = %v", visited)
	}
}

func TestManagerVolumeByClass(t *testing.T) {
	m := NewManager(storage.NewLog(0))
	m.Append(BeginRec{TxHdr{TxID: 1}})
	m.Append(CopyRec{Epoch: 1, From: 8, To: 16, SizeWords: 2, Descriptor: 1})
	m.Append(BaseRec{TxHdr: TxHdr{TxID: 1}, Addr: 8, Object: []byte{1, 2, 3, 4, 5, 6, 7, 8}})
	m.Append(PageFetchRec{Page: 1})
	tx, gc, track, book := m.VolumeByClass()
	if tx == 0 || gc == 0 || track == 0 || book == 0 {
		t.Fatalf("all classes must be nonzero: %d %d %d %d", tx, gc, track, book)
	}
	cnt, b := m.TypeStats(TCopy)
	if cnt != 1 || b == 0 {
		t.Fatalf("TypeStats(TCopy) = %d, %d", cnt, b)
	}
	m.ResetStats()
	if c, _ := m.TypeStats(TCopy); c != 0 {
		t.Fatal("ResetStats must zero counters")
	}
}

func TestManagerCrashLosesVolatileRecords(t *testing.T) {
	dev := storage.NewLog(0)
	m := NewManager(dev)
	l1 := m.Append(BeginRec{TxHdr{TxID: 1}})
	m.Force(l1)
	l2 := m.Append(CommitRec{TxHdr{TxID: 1, PrevLSN: l1}})
	dev.Crash()
	if _, err := m.ReadAt(l2); err == nil {
		t.Fatal("unforced commit record must not survive a crash")
	}
	if _, err := m.ReadAt(l1); err != nil {
		t.Fatal("forced record must survive a crash")
	}
}
