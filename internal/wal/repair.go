package wal

import (
	"encoding/binary"

	"stableheap/internal/storage"
	"stableheap/internal/word"
)

// RepairTornTail scans the stable log's raw frames from `from` and
// repairs a torn tail: a crash that arrived mid-force can leave the final
// retained record as a byte-prefix fragment (see storage.Log.CrashTorn).
// Such a record was never acknowledged — its force did not complete — so
// the repair rewinds the device to the fragment's start and recovery
// proceeds as if it were never written.
//
// Classification is deliberately conservative. A frame counts as torn
// only when it is physically incomplete: shorter than its own length
// prefix (or than the minimum header). A complete frame whose CRC fails
// is bit rot, not a tear — it may be an acknowledged commit — and is
// reported as a typed CorruptFrameError, as is any undecodable frame
// with more records after it (a tear can only be last).
//
// The repaired LSN (NilLSN if the log was whole) is returned for
// diagnostics.
func (m *Manager) RepairTornTail(from word.LSN) (word.LSN, error) {
	badLSN := word.NilLSN
	var badFrame []byte
	tailBad := false
	m.dev.Scan(from, true, func(lsn word.LSN, frame []byte) bool {
		if badLSN != word.NilLSN {
			// A record follows the undecodable frame: interior corruption.
			tailBad = false
			return false
		}
		if _, err := Decode(frame); err != nil {
			badLSN = lsn
			badFrame = frame
			tailBad = true
		}
		return true
	})
	if badLSN == word.NilLSN {
		return word.NilLSN, nil
	}
	if tailBad && frameIncomplete(badFrame) {
		m.dev.RepairTail(badLSN)
		return badLSN, nil
	}
	reason := "CRC or decode failure in a complete frame"
	if !tailBad {
		reason = "undecodable frame with records after it"
	}
	return word.NilLSN, &storage.CorruptFrameError{LSN: badLSN, Reason: reason}
}

// frameIncomplete reports whether the frame is physically shorter than
// it declares — the signature of a torn (prefix-only) write, as opposed
// to a complete frame whose contents rotted.
func frameIncomplete(frame []byte) bool {
	if len(frame) < frameHeader+1 {
		return true
	}
	return int(binary.LittleEndian.Uint32(frame[0:4])) > len(frame)
}
