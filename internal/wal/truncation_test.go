package wal

import (
	"errors"
	"testing"

	"stableheap/internal/storage"
	"stableheap/internal/word"
)

// fillManager appends n update records and forces them.
func fillManager(m *Manager, n int) []word.LSN {
	lsns := make([]word.LSN, 0, n)
	for i := 0; i < n; i++ {
		lsns = append(lsns, m.Append(UpdateRec{
			TxHdr: TxHdr{TxID: word.TxID(i + 1)},
			Addr:  word.Addr(8 * (i + 1)),
			Redo:  []byte{byte(i)}, Undo: []byte{byte(i)},
		}))
	}
	m.ForceAll()
	return lsns
}

func TestReadAtTruncatedSentinel(t *testing.T) {
	m := NewManager(storage.NewLog(64))
	lsns := fillManager(m, 10)
	m.Truncate(lsns[8])

	if _, err := m.ReadAt(lsns[0]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadAt below TruncLSN: got %v, want ErrTruncated", err)
	}
	// Beyond the end is "no record", NOT truncated.
	if _, err := m.ReadAt(m.EndLSN() + 100); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadAt beyond end: got %v, want plain not-found", err)
	}
	// A non-boundary LSN inside the retained region is also plain not-found.
	if _, err := m.ReadAt(lsns[len(lsns)-1] + 1); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadAt non-boundary: got %v, want plain not-found", err)
	}
}

func TestRetainFloorClampsTruncate(t *testing.T) {
	m := NewManager(storage.NewLog(64))
	lsns := fillManager(m, 20)

	m.SetRetainFloor("standby-a", lsns[2])
	m.Truncate(lsns[15])
	if _, err := m.ReadAt(lsns[2]); err != nil {
		t.Fatalf("floored record reclaimed: %v", err)
	}

	// Raising the floor releases the window; truncation then proceeds.
	m.SetRetainFloor("standby-a", lsns[15])
	m.Truncate(lsns[15])
	if _, err := m.ReadAt(lsns[2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("record below raised floor should be reclaimed, got %v", err)
	}
	if _, err := m.ReadAt(lsns[15]); err != nil {
		t.Fatalf("record at floor must survive: %v", err)
	}
}

func TestRetainFloorMinimumAcrossOwners(t *testing.T) {
	m := NewManager(storage.NewLog(64))
	lsns := fillManager(m, 20)
	m.SetRetainFloor("a", lsns[10])
	m.SetRetainFloor("b", lsns[4])
	if m.RetainFloor() != lsns[4] {
		t.Fatalf("RetainFloor = %d, want the minimum %d", m.RetainFloor(), lsns[4])
	}
	m.Truncate(lsns[15])
	if _, err := m.ReadAt(lsns[4]); err != nil {
		t.Fatalf("slowest standby's window reclaimed: %v", err)
	}
	m.ClearRetainFloor("b")
	if m.RetainFloor() != lsns[10] {
		t.Fatalf("RetainFloor after clear = %d, want %d", m.RetainFloor(), lsns[10])
	}
}

func TestCopyStableTailShipsVerbatimFrames(t *testing.T) {
	m := NewManager(storage.NewLog(0))
	lsns := fillManager(m, 6)
	// Append one volatile record: it must NOT ship.
	m.Append(CommitRec{TxHdr: TxHdr{TxID: 99}})

	data, next, err := m.CopyStableTail(lsns[0], 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if next != m.StableLSN() {
		t.Fatalf("cursor after full ship = %d, want stable LSN %d", next, m.StableLSN())
	}
	// Re-appending the shipped bytes to a fresh device reproduces the
	// stable prefix record for record at identical LSNs.
	replica := NewManager(storage.NewLog(0))
	for off := 0; off < len(data); {
		n, err := FrameLen(data[off:])
		if err != nil {
			t.Fatal(err)
		}
		lsn := replica.Device().Append(data[off : off+n])
		if want := lsns[0] + word.LSN(off); lsn != want {
			t.Fatalf("replica LSN %d, want %d", lsn, want)
		}
		off += n
	}
	replica.ForceAll()
	for _, lsn := range lsns {
		orig, err1 := m.ReadAt(lsn)
		got, err2 := replica.ReadAt(lsn)
		if err1 != nil || err2 != nil {
			t.Fatalf("ReadAt(%d): %v / %v", lsn, err1, err2)
		}
		if orig.Type() != got.Type() || orig.Tx() != got.Tx() {
			t.Fatalf("replica record at %d differs: %v vs %v", lsn, got, orig)
		}
	}
}

func TestCopyStableTailBounds(t *testing.T) {
	m := NewManager(storage.NewLog(64))
	lsns := fillManager(m, 10)

	// Byte-bounded: a tiny budget still ships at least one whole frame.
	data, next, err := m.CopyStableTail(lsns[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if next != lsns[1] || word.LSN(len(data)) != lsns[1]-lsns[0] {
		t.Fatalf("bounded ship returned %d bytes to cursor %d, want one frame to %d", len(data), next, lsns[1])
	}

	// Caught up: empty result, cursor unchanged.
	data, next, err = m.CopyStableTail(m.StableLSN(), 1<<20)
	if err != nil || len(data) != 0 || next != m.StableLSN() {
		t.Fatalf("caught-up ship = (%d bytes, %d, %v), want empty at stable LSN", len(data), next, err)
	}

	// Truncated resume point: the distinct sentinel.
	m.Truncate(lsns[8])
	if _, _, err := m.CopyStableTail(lsns[0], 1<<20); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ship from truncated LSN: got %v, want ErrTruncated", err)
	}
}
