package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"stableheap/internal/obs"
	"stableheap/internal/wal"
	"stableheap/internal/word"
)

// Source is the slice of a primary heap the shipper needs: verbatim
// stable-frame copies, the shipping horizon, and retention floors.
// *core.Heap implements it (all four run under the heap's action latch).
type Source interface {
	ShipLog(from word.LSN, maxBytes int) ([]byte, word.LSN, error)
	LogStableLSN() word.LSN
	SetLogRetainFloor(owner string, lsn word.LSN)
	ClearLogRetainFloor(owner string)
}

// PrimaryConfig tunes the shipper.
type PrimaryConfig struct {
	// BatchBytes bounds one FRAMES message (default 64 KiB). At least one
	// whole frame always ships, so oversized records still make progress.
	BatchBytes int
	// MaxUnackedBytes bounds how far shipping may run ahead of the
	// standby's acks (default 1 MiB). A slow standby stalls its own
	// session at this bound — backpressure — rather than buffering
	// unboundedly inside the kernel socket queues.
	MaxUnackedBytes int
	// PollInterval is how often a caught-up session re-checks the stable
	// horizon (default 200µs). Shipping is pull-based polling: the force
	// path stays untouched, at the cost of up to one interval of added
	// lag.
	PollInterval time.Duration
}

func (c PrimaryConfig) withDefaults() PrimaryConfig {
	if c.BatchBytes <= 0 {
		c.BatchBytes = 64 << 10
	}
	if c.MaxUnackedBytes <= 0 {
		c.MaxUnackedBytes = 1 << 20
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 200 * time.Microsecond
	}
	return c
}

// Primary ships the stable log to standbys. One Primary serves any
// number of concurrent sessions (one goroutine each, via Serve); each
// session's acks maintain a retention floor keyed by the standby's
// stable name, so reconnects move the same floor instead of leaking a
// new one, and Truncate never reclaims frames an attached standby has
// not yet durably applied.
type Primary struct {
	src Source
	cfg PrimaryConfig

	handshakes     obs.Counter
	rejects        obs.Counter
	shipBatches    obs.Counter
	shipBytes      obs.Counter
	stalls         obs.Counter
	shipNs         obs.Histogram
	ackedLSN       obs.Gauge
	shipLagBytes   obs.Gauge
	activeSessions obs.Gauge
}

// NewPrimary wraps a log source (normally a *core.Heap) as a shipper.
func NewPrimary(src Source, cfg PrimaryConfig) *Primary {
	return &Primary{src: src, cfg: cfg.withDefaults()}
}

// session is the shared state between a Serve loop and its ack reader.
type session struct {
	mu    sync.Mutex
	cond  *sync.Cond
	acked word.LSN
	dead  bool
	err   error
}

func (st *session) fail(err error) {
	st.mu.Lock()
	if !st.dead {
		st.dead, st.err = true, err
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// Serve runs one replication session over conn until the connection
// drops or the handshake is rejected. It blocks; run it in a goroutine
// per standby. The standby's retention floor survives disconnection (so
// a reconnect can resume) — call Forget to decommission a standby for
// good.
func (p *Primary) Serve(conn net.Conn) error {
	defer conn.Close()
	kind, payload, err := readMsg(conn)
	if err != nil {
		return fmt.Errorf("repl: reading handshake: %w", err)
	}
	if kind != msgHello {
		return fmt.Errorf("repl: expected HELLO, got %s", kindName(kind))
	}
	resume, name, err := parseHello(payload)
	if err != nil {
		return err
	}
	p.handshakes.Inc()

	// Probe the resume point before accepting: a truncated LSN means the
	// standby fell behind the retention window (e.g. while detached with
	// no floor) and re-shipping is impossible.
	if _, _, err := p.src.ShipLog(resume, 1); err != nil {
		if errors.Is(err, wal.ErrTruncated) {
			p.rejects.Inc()
			writeMsg(conn, msgHelloAck, helloAckPayload(helloAckTruncated, p.src.LogStableLSN()))
			return ErrResumeTruncated
		}
		return fmt.Errorf("repl: probing resume LSN %d: %w", resume, err)
	}

	// Pin the log from the resume point BEFORE acknowledging, so no
	// truncation can race into the window between handshake and first
	// ack.
	owner := floorOwner(name)
	p.src.SetLogRetainFloor(owner, resume)
	if err := writeMsg(conn, msgHelloAck, helloAckPayload(helloAckOK, resume)); err != nil {
		return err
	}

	st := &session{acked: resume}
	st.cond = sync.NewCond(&st.mu)
	go p.readAcks(conn, owner, st)

	p.activeSessions.Add(1)
	defer p.activeSessions.Add(-1)

	cursor := resume
	for {
		// Backpressure: wait for acks when too far ahead of the standby.
		st.mu.Lock()
		if !st.dead && cursor-st.acked > word.LSN(p.cfg.MaxUnackedBytes) {
			p.stalls.Inc()
			for !st.dead && cursor-st.acked > word.LSN(p.cfg.MaxUnackedBytes) {
				st.cond.Wait()
			}
		}
		dead, serr := st.dead, st.err
		st.mu.Unlock()
		if dead {
			return serr
		}

		data, next, err := p.src.ShipLog(cursor, p.cfg.BatchBytes)
		if err != nil {
			return fmt.Errorf("repl: shipping from %d: %w", cursor, err)
		}
		if len(data) == 0 {
			// Caught up: poll for new stable frames.
			time.Sleep(p.cfg.PollInterval)
			continue
		}
		start := time.Now()
		if err := writeMsg(conn, msgFrames, framesPayload(cursor, p.src.LogStableLSN(), data)); err != nil {
			return err
		}
		p.shipNs.Since(start)
		p.shipBatches.Inc()
		p.shipBytes.Add(uint64(len(data)))
		cursor = next
	}
}

// readAcks drains the standby's acks: each one advances the retention
// floor (the standby has durably applied everything below it) and wakes
// a ship loop stalled on backpressure.
func (p *Primary) readAcks(conn net.Conn, owner string, st *session) {
	for {
		kind, payload, err := readMsg(conn)
		if err != nil {
			st.fail(err)
			return
		}
		if kind != msgAck {
			st.fail(fmt.Errorf("repl: expected ACK, got %s", kindName(kind)))
			return
		}
		applied, err := parseAck(payload)
		if err != nil {
			st.fail(err)
			return
		}
		p.src.SetLogRetainFloor(owner, applied)
		p.ackedLSN.Set(int64(applied))
		if stable := p.src.LogStableLSN(); stable > applied {
			p.shipLagBytes.Set(int64(stable - applied))
		} else {
			p.shipLagBytes.Set(0)
		}
		st.mu.Lock()
		if applied > st.acked {
			st.acked = applied
		}
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}

// Forget decommissions a standby: its retention floor is dropped and the
// log may truncate past its resume point. A later reconnect from the
// same standby is rejected with ErrResumeTruncated once truncation has
// actually passed it.
func (p *Primary) Forget(standbyName string) {
	p.src.ClearLogRetainFloor(floorOwner(standbyName))
}

// floorOwner namespaces standby floors in the wal manager's floor map.
func floorOwner(name string) string { return "repl:" + name }

// Metrics snapshots the shipper's counters and latency distributions
// under the repl_ namespace.
func (p *Primary) Metrics() obs.Snapshot {
	s := obs.NewSnapshot()
	s.SetCounter("repl_handshakes_total", int64(p.handshakes.Load()))
	s.SetCounter("repl_resume_rejected_total", int64(p.rejects.Load()))
	s.SetCounter("repl_ship_batches_total", int64(p.shipBatches.Load()))
	s.SetCounter("repl_shipped_bytes_total", int64(p.shipBytes.Load()))
	s.SetCounter("repl_backpressure_stalls_total", int64(p.stalls.Load()))
	s.SetCounter("repl_active_sessions", p.activeSessions.Load())
	s.SetCounter("repl_acked_lsn", p.ackedLSN.Load())
	s.SetCounter("repl_ship_lag_bytes", p.shipLagBytes.Load())
	s.SetHist("repl_ship_ns", p.shipNs.Snapshot())
	return s
}
