package repl

import (
	"encoding/binary"
	"fmt"
	"io"

	"stableheap/internal/word"
)

// This file extends the replication wire protocol with the two message
// kinds of cross-partition two-phase commit resolution (internal/shard):
// a recovering partition asks the coordinator for the fate of an in-doubt
// prepared branch, and the coordinator answers from its decision log
// (presumed abort: no durable commit decision means abort). The messages
// share the [u8 kind][u32 len][u32 crc][payload] framing of the shipping
// protocol, so resolution runs over the same kind of byte stream —
// net.Pipe in-process today, TCP when partitions move to separate hosts.

// 2PC resolution message kinds.
const (
	// MsgResolveQuery asks for the outcome of one in-doubt branch.
	MsgResolveQuery byte = 5
	// MsgResolveVerdict answers with the branch's global outcome.
	MsgResolveVerdict byte = 6
)

// WriteMsg frames and writes one protocol message (exported surface of
// the shipping protocol's framing, for the 2PC coordination channel).
func WriteMsg(w io.Writer, kind byte, payload []byte) error {
	return writeMsg(w, kind, payload)
}

// ReadMsg reads and validates one protocol message.
func ReadMsg(r io.Reader) (byte, []byte, error) {
	return readMsg(r)
}

// RESOLVE_QUERY payload: [u32 partition][u64 branch txid].
func ResolveQueryPayload(part uint32, id word.TxID) []byte {
	p := make([]byte, 12)
	binary.LittleEndian.PutUint32(p[0:4], part)
	binary.LittleEndian.PutUint64(p[4:12], uint64(id))
	return p
}

// ParseResolveQuery decodes a RESOLVE_QUERY payload.
func ParseResolveQuery(p []byte) (uint32, word.TxID, error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("repl: RESOLVE_QUERY payload is %d bytes, want 12", len(p))
	}
	return binary.LittleEndian.Uint32(p[0:4]), word.TxID(binary.LittleEndian.Uint64(p[4:12])), nil
}

// RESOLVE_VERDICT payload: [u8 commit][u64 gid]. gid is 0 when the branch
// is unknown to the coordinator (presumed abort).
func ResolveVerdictPayload(commit bool, gid uint64) []byte {
	p := make([]byte, 9)
	if commit {
		p[0] = 1
	}
	binary.LittleEndian.PutUint64(p[1:9], gid)
	return p
}

// ParseResolveVerdict decodes a RESOLVE_VERDICT payload.
func ParseResolveVerdict(p []byte) (bool, uint64, error) {
	if len(p) != 9 {
		return false, 0, fmt.Errorf("repl: RESOLVE_VERDICT payload is %d bytes, want 9", len(p))
	}
	return p[0] != 0, binary.LittleEndian.Uint64(p[1:9]), nil
}
