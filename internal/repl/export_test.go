package repl

import "time"

// Bridges for the external test package. repl_test is external so it can
// import the root stableheap facade (and workload, which depends on it)
// without an import cycle: stableheap → internal/shard → repl.

const (
	MsgHello    = msgHello
	MsgHelloAck = msgHelloAck
	MsgFrames   = msgFrames
	MsgAck      = msgAck
)

var (
	KindName      = kindName
	HelloPayload  = helloPayload
	ParseHello    = parseHello
	FramesPayload = framesPayload
	ParseFrames   = parseFrames
	AckPayload    = ackPayload
	ParseAck      = parseAck
)

// SetReconnectBounds overrides the standby's reconnect backoff window.
func (s *Standby) SetReconnectBounds(min, max time.Duration) {
	s.cfg.ReconnectMin, s.cfg.ReconnectMax = min, max
}

// Reconnects returns the standby's reconnect count.
func (s *Standby) Reconnects() uint64 { return s.reconnects.Load() }

// Rejects returns the primary's rejected-handshake count.
func (p *Primary) Rejects() uint64 { return p.rejects.Load() }

// Stalls returns the primary's backpressure-stall count.
func (p *Primary) Stalls() uint64 { return p.stalls.Load() }
