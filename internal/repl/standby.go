package repl

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stableheap/internal/core"
	"stableheap/internal/obs"
	"stableheap/internal/recovery"
	"stableheap/internal/storage"
	"stableheap/internal/vm"
	"stableheap/internal/wal"
	"stableheap/internal/word"
)

// StandbyConfig tunes a warm standby.
type StandbyConfig struct {
	// Name is the standby's stable identity: the primary keys its
	// retention floor by it, so reconnects from the same standby move one
	// floor instead of leaking a new one per session.
	Name string
	// Heap is the primary's configuration — the promoted heap and
	// snapshot reads are built with it, and the standby's own page store
	// matches its geometry. Zero fields default exactly as in core.Open.
	Heap core.Config
	// ReconnectMin/Max bound the jittered exponential backoff between
	// dial attempts (defaults 5ms / 1s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Seed makes the backoff jitter deterministic for tests (0 picks 1).
	Seed int64
}

func (c StandbyConfig) withDefaults() StandbyConfig {
	if c.Name == "" {
		c.Name = "standby"
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = 5 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ErrPromoted is returned by operations on a standby after Promote: the
// devices now belong to the promoted heap.
var ErrPromoted = errors.New("repl: standby already promoted")

// Standby is a warm replica fed by log shipping. It owns a disk and log
// seeded from a base backup (core.Heap.BaseBackup) and runs continuous
// redo (recovery.Applier) over every shipped frame, maintaining the
// invariant that its devices always equal a primary that crashed at
// AppliedLSN. It supports read-only snapshot reads at the applied LSN
// and promotion to a serving heap via ordinary bounded recovery.
type Standby struct {
	cfg  StandbyConfig
	hcfg core.Config // normalized

	mu       sync.Mutex // guards devices, applier, promoted, conn
	disk     storage.PageStore
	logDev   storage.LogDevice
	logMgr   *wal.Manager
	mem      *vm.Store
	ap       *recovery.Applier
	promoted bool
	conn     net.Conn // current session's connection, for interruption

	applied       atomic.Uint64 // word.LSN: durably applied prefix
	primaryStable atomic.Uint64 // word.LSN: primary's horizon at last batch

	stopOnce sync.Once
	stopped  chan struct{}

	rec *obs.BlackBox // optional flight recorder; applyBatch records EvStandbyApply

	connects      obs.Counter
	reconnects    obs.Counter
	applyBatches  obs.Counter
	applyRecords  obs.Counter
	applyBytes    obs.Counter
	snapshotReads obs.Counter
	applyNs       obs.Histogram
	failoverNs    obs.Histogram
	lagBytes      obs.Gauge
	appliedLSN    obs.Gauge
}

// NewStandby builds a warm standby over a base backup's devices: it
// bootstraps the page store with recovery's analysis + redo over the
// retained stable log (so the store is current through the backup's end)
// and is then ready to apply shipped frames. The standby resumes
// shipping from the backup log's end LSN.
func NewStandby(cfg StandbyConfig, disk storage.PageStore, logDev storage.LogDevice) (*Standby, error) {
	cfg = cfg.withDefaults()
	hcfg := cfg.Heap.WithDefaults()
	logMgr := wal.NewManager(logDev)
	mem := vm.New(vm.Config{PageSize: hcfg.PageSize, CachePages: hcfg.CachePages}, disk, logMgr)
	ap, err := recovery.StartApplier(mem, logMgr, recovery.Options{RedoWorkers: hcfg.RecoveryWorkers})
	if err != nil {
		return nil, fmt.Errorf("repl: bootstrapping standby: %w", err)
	}
	s := &Standby{
		cfg: cfg, hcfg: hcfg,
		disk: disk, logDev: logDev, logMgr: logMgr, mem: mem, ap: ap,
		stopped: make(chan struct{}),
	}
	s.applied.Store(uint64(logDev.EndLSN()))
	s.appliedLSN.Set(int64(logDev.EndLSN()))
	return s, nil
}

// SetRecorder attaches a flight recorder: every applied batch from then
// on lands as an EvStandbyApply event (applied LSN, lag bytes), so a
// post-mortem dump shows how far the replica trailed the primary.
func (s *Standby) SetRecorder(b *obs.BlackBox) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec = b
}

// Name returns the standby's stable identity.
func (s *Standby) Name() string { return s.cfg.Name }

// AppliedLSN is the end of the durably applied log prefix — the resume
// point a reconnect would request.
func (s *Standby) AppliedLSN() word.LSN { return word.LSN(s.applied.Load()) }

// PrimaryStableLSN is the primary's stable horizon as of the last
// received batch (0 before any batch arrives).
func (s *Standby) PrimaryStableLSN() word.LSN { return word.LSN(s.primaryStable.Load()) }

// LagBytes is the replication lag in log bytes: how far the applied
// prefix trails the primary's stable horizon as last reported.
func (s *Standby) LagBytes() int64 {
	lag := int64(s.primaryStable.Load()) - int64(s.applied.Load())
	if lag < 0 {
		return 0
	}
	return lag
}

// RunConn runs one replication session over conn: handshake, then apply
// batches and ack until the connection drops, Close, or Promote. The
// returned error is ErrResumeTruncated when the primary can no longer
// serve our resume point (terminal — the standby needs re-seeding).
func (s *Standby) RunConn(conn net.Conn) error {
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		conn.Close()
		return ErrPromoted
	}
	s.conn = conn
	s.mu.Unlock()
	defer conn.Close()

	resume := s.AppliedLSN()
	if err := writeMsg(conn, msgHello, helloPayload(resume, s.cfg.Name)); err != nil {
		return err
	}
	kind, payload, err := readMsg(conn)
	if err != nil {
		return err
	}
	if kind != msgHelloAck {
		return fmt.Errorf("repl: expected HELLO_ACK, got %s", kindName(kind))
	}
	status, primEnd, err := parseHelloAck(payload)
	if err != nil {
		return err
	}
	if status == helloAckTruncated {
		return fmt.Errorf("%w (resume %d, primary stable %d)", ErrResumeTruncated, resume, primEnd)
	}
	s.connects.Inc()

	for {
		kind, payload, err := readMsg(conn)
		if err != nil {
			return err
		}
		if kind != msgFrames {
			return fmt.Errorf("repl: expected FRAMES, got %s", kindName(kind))
		}
		start, stable, frames, err := parseFrames(payload)
		if err != nil {
			return err
		}
		applied, err := s.applyBatch(start, frames)
		if err != nil {
			return err
		}
		s.primaryStable.Store(uint64(stable))
		lag := int64(stable) - int64(applied)
		if lag < 0 {
			lag = 0
		}
		s.lagBytes.Set(lag)
		s.recordApply(applied, lag)
		if err := writeMsg(conn, msgAck, ackPayload(applied)); err != nil {
			return err
		}
	}
}

// applyBatch appends a batch of shipped frames to the replica log at
// their original LSNs, forces them, and folds each record into the page
// store via the continuous-redo applier. Append+force strictly precede
// apply: the applier's invariant is that the stable log already holds
// everything it has applied (an ack promises durability, and a shipped
// checkpoint may only become the master once it is in our stable log).
func (s *Standby) applyBatch(start word.LSN, data []byte) (word.LSN, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return 0, ErrPromoted
	}
	if end := s.logDev.EndLSN(); start != end {
		return 0, fmt.Errorf("repl: batch starts at %d, replica log ends at %d", start, end)
	}
	t0 := time.Now()
	type pending struct {
		lsn word.LSN
		rec wal.Record
	}
	recs := make([]pending, 0, 16)
	for off := 0; off < len(data); {
		n, err := wal.FrameLen(data[off:])
		if err != nil {
			return 0, err
		}
		rec, err := wal.Decode(data[off : off+n])
		if err != nil {
			return 0, fmt.Errorf("repl: corrupt shipped frame at offset %d: %w", off, err)
		}
		recs = append(recs, pending{s.logDev.Append(data[off : off+n]), rec})
		off += n
	}
	s.logDev.ForceAll()
	for _, pr := range recs {
		s.ap.Apply(pr.lsn, pr.rec)
	}
	applied := s.logDev.EndLSN()
	s.applied.Store(uint64(applied))
	s.appliedLSN.Set(int64(applied))
	s.applyNs.Since(t0)
	s.applyBatches.Inc()
	s.applyRecords.Add(uint64(len(recs)))
	s.applyBytes.Add(uint64(len(data)))
	return applied, nil
}

// recordApply emits one EvStandbyApply into the attached flight recorder
// (nil-safe: a no-op when none is attached).
func (s *Standby) recordApply(applied word.LSN, lag int64) {
	s.mu.Lock()
	b := s.rec
	s.mu.Unlock()
	b.Record(obs.EvStandbyApply, 0, uint64(applied), uint64(lag))
}

// Run dials and serves sessions until Close or Promote, reconnecting
// with jittered exponential backoff after connection failures and
// resuming from the applied LSN. It returns nil after Close/Promote and
// ErrResumeTruncated if the primary can no longer serve our resume point.
func (s *Standby) Run(dial func() (net.Conn, error)) error {
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	delay := s.cfg.ReconnectMin
	for attempt := 0; ; attempt++ {
		if s.isStopped() {
			return nil
		}
		conn, err := dial()
		if err == nil {
			if attempt > 0 {
				s.reconnects.Inc()
			}
			err = s.RunConn(conn)
			if errors.Is(err, ErrResumeTruncated) {
				return err
			}
			delay = s.cfg.ReconnectMin // healthy session: reset backoff
		}
		if s.isStopped() {
			return nil
		}
		// Full jitter: sleep uniformly in [delay/2, delay).
		sleep := delay/2 + time.Duration(rng.Int63n(int64(delay/2)+1))
		timer := time.NewTimer(sleep)
		select {
		case <-s.stopped:
			timer.Stop()
			return nil
		case <-timer.C:
		}
		if delay *= 2; delay > s.cfg.ReconnectMax {
			delay = s.cfg.ReconnectMax
		}
	}
}

func (s *Standby) isStopped() bool {
	select {
	case <-s.stopped:
		return true
	default:
		return false
	}
}

// WaitCaughtUp blocks until the applied LSN reaches target (e.g. the
// primary's LogStableLSN) or the timeout expires.
func (s *Standby) WaitCaughtUp(target word.LSN, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for s.AppliedLSN() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: still at %d after %v, want %d", s.AppliedLSN(), timeout, target)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// ReadSnapshot materializes a read-only heap at the applied LSN: it
// recovers copies of the standby's devices, so losers in flight at the
// snapshot point are rolled back and the result is transaction-
// consistent. The snapshot is independent — reads on it never disturb
// replication — and is simply discarded when done.
func (s *Standby) ReadSnapshot() (*core.Heap, word.LSN, error) {
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		return nil, 0, ErrPromoted
	}
	disk := s.disk.Clone()
	logCopy := s.logDev.Clone()
	at := s.AppliedLSN()
	s.mu.Unlock()
	s.snapshotReads.Inc()
	hp, err := core.Recover(s.hcfg, disk, logCopy)
	if err != nil {
		return nil, 0, fmt.Errorf("repl: snapshot recovery at %d: %w", at, err)
	}
	return hp, at, nil
}

// PromoteStats reports what failover cost and what it found.
type PromoteStats struct {
	Duration   time.Duration // core.Recover wall time
	AppliedLSN word.LSN      // shipped prefix the promoted heap starts from
	RedoStart  word.LSN      // where repeating history began
	Scanned    int           // redo records scanned
	Losers     int           // in-flight transactions rolled back
	InDoubt    int           // prepared transactions restored
	GCResumed  bool          // an interrupted incremental collection was restored
}

// Promote fails the standby over to a serving primary: replication stops,
// and ordinary bounded recovery runs on the standby's own devices —
// analysis from the last shipped checkpoint, redo of the shipped tail
// (cheap: continuous apply already installed it, so redo is page-LSN
// no-ops except pages evicted unflushed), undo of transactions in flight
// at the failover point, and restoration of any interrupted incremental
// collection, which the promoted heap resumes where the primary left
// off. The standby is dead afterwards; the caller owns the heap.
func (s *Standby) Promote() (*core.Heap, PromoteStats, error) {
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		return nil, PromoteStats{}, ErrPromoted
	}
	s.promoted = true
	conn := s.conn
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopped) })
	if conn != nil {
		conn.Close() // unblock RunConn; applyBatch already sees promoted
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	applied := s.AppliedLSN()
	t0 := time.Now()
	hp, err := core.Recover(s.hcfg, s.disk, s.logDev)
	if err != nil {
		return nil, PromoteStats{}, fmt.Errorf("repl: promotion recovery: %w", err)
	}
	d := time.Since(t0)
	s.failoverNs.Observe(uint64(d))
	res := hp.LastRecovery()
	st := PromoteStats{
		Duration:   d,
		AppliedLSN: applied,
		RedoStart:  res.RedoStart,
		Scanned:    res.RedoScanned,
		Losers:     len(res.Losers),
		InDoubt:    len(res.InDoubt),
		GCResumed:  hp.StableCollector().Active(),
	}
	return hp, st, nil
}

// Close stops replication (Run returns, the current session drops) but
// leaves the devices intact; a new Standby could be built over them.
func (s *Standby) Close() {
	s.stopOnce.Do(func() { close(s.stopped) })
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// ApplierStats exposes the continuous-redo applier's counters.
func (s *Standby) ApplierStats() recovery.ApplierStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ap.Stats()
}

// Metrics snapshots the standby's counters and latency distributions
// under the repl_ namespace.
func (s *Standby) Metrics() obs.Snapshot {
	snap := obs.NewSnapshot()
	snap.SetCounter("repl_connects_total", int64(s.connects.Load()))
	snap.SetCounter("repl_reconnects_total", int64(s.reconnects.Load()))
	snap.SetCounter("repl_apply_batches_total", int64(s.applyBatches.Load()))
	snap.SetCounter("repl_applied_records_total", int64(s.applyRecords.Load()))
	snap.SetCounter("repl_applied_bytes_total", int64(s.applyBytes.Load()))
	snap.SetCounter("repl_snapshot_reads_total", int64(s.snapshotReads.Load()))
	snap.SetCounter("repl_applied_lsn", s.appliedLSN.Load())
	snap.SetCounter("repl_lag_bytes", s.lagBytes.Load())
	snap.SetCounter("repl_lag_lsn", s.lagBytes.Load())
	snap.SetHist("repl_apply_ns", s.applyNs.Snapshot())
	snap.SetHist("repl_failover_ns", s.failoverNs.Snapshot())
	return snap
}
