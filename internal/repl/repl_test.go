package repl_test

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"stableheap"
	"stableheap/internal/core"
	"stableheap/internal/gc"
	"stableheap/internal/repl"
	"stableheap/internal/word"
	"stableheap/internal/workload"
)

func testConfig() core.Config {
	return core.Config{
		PageSize:      256,
		StableWords:   16 * 1024,
		VolatileWords: 4 * 1024,
		LogSegBytes:   4 * 1024, // fine-grained truncation for floor tests
		Divided:       true,
		Barrier:       gc.Ellis,
		Incremental:   true,
	}
}

// newBankPrimary opens a heap with cfg, builds a bank, and wraps the
// heap as a shipping source.
func newBankPrimary(t *testing.T, cfg core.Config, pcfg repl.PrimaryConfig) (*stableheap.Heap, *workload.Bank, *repl.Primary) {
	t.Helper()
	h := stableheap.Open(cfg)
	bank, err := workload.NewBank(h, 0, 16, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return h, bank, repl.NewPrimary(h.Internal(), pcfg)
}

// attachStandby base-backups the primary and builds a warm standby with
// the matching heap configuration.
func attachStandby(t *testing.T, h *stableheap.Heap, name string) *repl.Standby {
	t.Helper()
	disk, logDev := h.Internal().BaseBackup()
	sb, err := repl.NewStandby(repl.StandbyConfig{Name: name, Heap: h.Internal().Config()}, disk, logDev)
	if err != nil {
		t.Fatal(err)
	}
	return sb
}

// connect wires a standby to a primary over an in-process pipe, running
// both sides in goroutines. Returns the server-side conn (close it to
// simulate a network fault).
func connect(p *repl.Primary, sb *repl.Standby) net.Conn {
	server, client := net.Pipe()
	go p.Serve(server)
	go sb.RunConn(client)
	return server
}

// transferSome runs n random committed transfers.
func transferSome(t *testing.T, bank *workload.Bank, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	if _, err := bank.RunMix(rng, n, 50); err != nil {
		t.Fatal(err)
	}
}

// waitCaughtUp waits until the standby applied the primary's full stable
// prefix.
func waitCaughtUp(t *testing.T, h *stableheap.Heap, sb *repl.Standby) {
	t.Helper()
	if err := sb.WaitCaughtUp(h.Internal().LogStableLSN(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func bankTotal(t *testing.T, bank *workload.Bank, h *stableheap.Heap) uint64 {
	t.Helper()
	bank.Reattach(h)
	total, err := bank.Total()
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func TestProtoRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := repl.WriteMsg(&buf, repl.MsgHello, repl.HelloPayload(12345, "sb-1")); err != nil {
		t.Fatal(err)
	}
	if err := repl.WriteMsg(&buf, repl.MsgFrames, repl.FramesPayload(7, 99, []byte("framebytes"))); err != nil {
		t.Fatal(err)
	}
	if err := repl.WriteMsg(&buf, repl.MsgAck, repl.AckPayload(4242)); err != nil {
		t.Fatal(err)
	}

	kind, p, err := repl.ReadMsg(&buf)
	if err != nil || kind != repl.MsgHello {
		t.Fatalf("repl.ReadMsg: kind=%s err=%v", repl.KindName(kind), err)
	}
	resume, name, err := repl.ParseHello(p)
	if err != nil || resume != 12345 || name != "sb-1" {
		t.Fatalf("repl.ParseHello = (%d, %q, %v)", resume, name, err)
	}
	kind, p, _ = repl.ReadMsg(&buf)
	start, stable, frames, err := repl.ParseFrames(p)
	if kind != repl.MsgFrames || err != nil || start != 7 || stable != 99 || string(frames) != "framebytes" {
		t.Fatalf("FRAMES roundtrip = (%d, %d, %q, %v)", start, stable, frames, err)
	}
	kind, p, _ = repl.ReadMsg(&buf)
	applied, err := repl.ParseAck(p)
	if kind != repl.MsgAck || err != nil || applied != 4242 {
		t.Fatalf("ACK roundtrip = (%d, %v)", applied, err)
	}
}

func TestProtoRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := repl.WriteMsg(&buf, repl.MsgAck, repl.AckPayload(7)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff // flip a payload byte
	if _, _, err := repl.ReadMsg(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted payload passed the CRC check")
	}
	// A truncated stream is an error, not a hang or a zero message.
	if _, _, err := repl.ReadMsg(bytes.NewReader(raw[:5])); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestShipApplyAndSnapshotReads(t *testing.T) {
	h, bank, p := newBankPrimary(t, testConfig(), repl.PrimaryConfig{})
	transferSome(t, bank, 1, 40)

	sb := attachStandby(t, h, "sb-snap")
	defer sb.Close()
	connect(p, sb)

	transferSome(t, bank, 2, 60)
	waitCaughtUp(t, h, sb)

	if st := sb.ApplierStats(); st.Applied == 0 {
		t.Fatalf("continuous apply did nothing: %+v", st)
	}
	if sb.LagBytes() != 0 {
		t.Fatalf("caught-up standby reports lag %d", sb.LagBytes())
	}

	// A read-only snapshot at the applied LSN sees the committed bank.
	snap, at, err := sb.ReadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if at != sb.AppliedLSN() {
		t.Fatalf("snapshot at %d, applied %d", at, sb.AppliedLSN())
	}
	if got := bankTotal(t, bank, stableheap.AdoptInternal(snap)); got != 16*1000 {
		t.Fatalf("snapshot bank total = %d, want %d", got, 16*1000)
	}
	// The snapshot is independent: replication continues underneath it.
	transferSome(t, bank, 3, 20)
	waitCaughtUp(t, h, sb)
}

func TestPromoteAfterPrimaryCrash(t *testing.T) {
	h, bank, p := newBankPrimary(t, testConfig(), repl.PrimaryConfig{})
	sb := attachStandby(t, h, "sb-promote")
	connect(p, sb)

	transferSome(t, bank, 4, 80)
	h.Internal().Checkpoint()
	transferSome(t, bank, 5, 40)
	waitCaughtUp(t, h, sb)

	h.Internal().Crash()
	promoted, stats, err := sb.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duration <= 0 || stats.AppliedLSN == 0 {
		t.Fatalf("implausible promote stats: %+v", stats)
	}
	served := stableheap.AdoptInternal(promoted)
	if got := bankTotal(t, bank, served); got != 16*1000 {
		t.Fatalf("promoted bank total = %d, want %d", got, 16*1000)
	}
	// The promoted heap serves writes.
	transferSome(t, bank, 6, 20)
	if got := bankTotal(t, bank, served); got != 16*1000 {
		t.Fatalf("post-promotion total = %d, want %d", got, 16*1000)
	}
	// The standby is spent.
	if _, _, err := sb.ReadSnapshot(); !errors.Is(err, repl.ErrPromoted) {
		t.Fatalf("snapshot after promote: %v, want repl.ErrPromoted", err)
	}
	if _, _, err := sb.Promote(); !errors.Is(err, repl.ErrPromoted) {
		t.Fatalf("double promote: %v, want repl.ErrPromoted", err)
	}
}

func TestPromoteMidIncrementalGC(t *testing.T) {
	// A larger live set, explicit pacing only (no per-op GC steps), so
	// the incremental collection is still in flight at the failover.
	cfg := testConfig()
	cfg.DisableOpPacing = true
	h := stableheap.Open(cfg)
	bank, err := workload.NewBank(h, 0, 64, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p := repl.NewPrimary(h.Internal(), repl.PrimaryConfig{})
	sb := attachStandby(t, h, "sb-gc")
	connect(p, sb)

	transferSome(t, bank, 7, 60)
	// Evacuate the bank into the stable area (a stable collection scans
	// only stable objects), then start an incremental collection and
	// leave it in flight.
	if _, err := h.Internal().CollectVolatile(); err != nil {
		t.Fatal(err)
	}
	h.Internal().StartStableCollection()
	h.Internal().StepStable()
	if !h.Internal().StableCollector().Active() {
		t.Fatal("collection finished in one step; cannot exercise mid-GC failover")
	}
	transferSome(t, bank, 8, 20)
	waitCaughtUp(t, h, sb)

	h.Internal().Crash()
	promoted, stats, err := sb.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.GCResumed {
		t.Fatal("interrupted incremental collection was not restored on the promoted heap")
	}
	served := stableheap.AdoptInternal(promoted)
	if got := bankTotal(t, bank, served); got != 64*1000 {
		t.Fatalf("promoted bank total = %d, want %d", got, 64*1000)
	}
	// Drive the resumed collection to completion and re-verify.
	for promoted.StableCollector().Active() {
		promoted.StepStable()
	}
	if got := bankTotal(t, bank, served); got != 64*1000 {
		t.Fatalf("total after finishing resumed GC = %d, want %d", got, 64*1000)
	}
}

func TestReconnectResumesFromAppliedLSN(t *testing.T) {
	h, bank, p := newBankPrimary(t, testConfig(), repl.PrimaryConfig{})
	sb := attachStandby(t, h, "sb-reconnect")
	defer sb.Close()

	var sessions []net.Conn
	dial := func() (net.Conn, error) {
		server, client := net.Pipe()
		sessions = append(sessions, server)
		go p.Serve(server)
		return client, nil
	}
	sb.SetReconnectBounds(time.Millisecond, 5*time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- sb.Run(dial) }()

	transferSome(t, bank, 9, 50)
	waitCaughtUp(t, h, sb)
	mark := sb.AppliedLSN()

	// Network fault: kill the server side of the live session.
	sessions[0].Close()
	transferSome(t, bank, 10, 50)
	waitCaughtUp(t, h, sb)

	if sb.AppliedLSN() <= mark {
		t.Fatalf("standby did not advance after reconnect: %d <= %d", sb.AppliedLSN(), mark)
	}
	if sb.Reconnects() == 0 {
		t.Fatal("no reconnect was counted")
	}
	// The replica is still exact: snapshot sees the conserved total.
	snap, _, err := sb.ReadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := bankTotal(t, bank, stableheap.AdoptInternal(snap)); got != 16*1000 {
		t.Fatalf("post-reconnect snapshot total = %d, want %d", got, 16*1000)
	}
	sb.Close()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v after Close, want nil", err)
	}
}

func TestRetentionFloorProtectsDetachedStandby(t *testing.T) {
	h, bank, p := newBankPrimary(t, testConfig(), repl.PrimaryConfig{})
	sb := attachStandby(t, h, "sb-floor")
	defer sb.Close()

	// Session 1: catch up, then drop the connection. The ack floor stays.
	server := connect(p, sb)
	transferSome(t, bank, 11, 30)
	waitCaughtUp(t, h, sb)
	server.Close()
	time.Sleep(5 * time.Millisecond) // let both loops notice

	// Heavy churn + aggressive checkpoint/truncate while detached.
	for i := 0; i < 5; i++ {
		transferSome(t, bank, int64(20+i), 40)
		h.Internal().Checkpoint()
		h.Internal().Checkpoint()
		h.Internal().TruncateLog()
	}
	// The floor must have held the log at the standby's resume point.
	if _, _, err := h.Internal().ShipLog(sb.AppliedLSN(), 1); err != nil {
		t.Fatalf("retained window lost under truncation: %v", err)
	}

	// Session 2 resumes exactly where session 1 left off.
	connect(p, sb)
	waitCaughtUp(t, h, sb)
	snap, _, err := sb.ReadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := bankTotal(t, bank, stableheap.AdoptInternal(snap)); got != 16*1000 {
		t.Fatalf("resumed snapshot total = %d, want %d", got, 16*1000)
	}
}

func TestForgottenStandbyRejectedAfterTruncation(t *testing.T) {
	h, bank, p := newBankPrimary(t, testConfig(), repl.PrimaryConfig{})
	sb := attachStandby(t, h, "sb-stale")
	defer sb.Close()

	server := connect(p, sb)
	transferSome(t, bank, 30, 20)
	waitCaughtUp(t, h, sb)
	server.Close()
	time.Sleep(5 * time.Millisecond)

	// Decommission: the floor drops, and churn truncates past the resume
	// point.
	p.Forget("sb-stale")
	resume := sb.AppliedLSN()
	for i := 0; i < 50; i++ {
		transferSome(t, bank, int64(40+i), 40)
		h.Internal().Checkpoint()
		h.Internal().Checkpoint()
		h.Internal().TruncateLog()
		if _, _, err := h.Internal().ShipLog(resume, 1); err != nil {
			break // resume point reclaimed: the scenario is set up
		}
	}
	if _, _, err := h.Internal().ShipLog(resume, 1); err == nil {
		t.Fatal("churn never truncated past the forgotten standby's resume point")
	}

	dial := func() (net.Conn, error) {
		server, client := net.Pipe()
		go p.Serve(server)
		return client, nil
	}
	err := sb.Run(dial)
	if !errors.Is(err, repl.ErrResumeTruncated) {
		t.Fatalf("stale standby Run = %v, want repl.ErrResumeTruncated", err)
	}
	if p.Rejects() == 0 {
		t.Fatal("primary did not count the rejected handshake")
	}
}

// TestBackpressureBoundsUnackedBytes drives Serve against a hand-rolled
// slow standby that reads frames but withholds acks: shipping must stall
// at MaxUnackedBytes (not buffer arbitrarily far ahead) and resume once
// an ack arrives.
func TestBackpressureBoundsUnackedBytes(t *testing.T) {
	const maxUnacked = 4096
	_, bank, p := newBankPrimary(t, testConfig(), repl.PrimaryConfig{MaxUnackedBytes: maxUnacked, BatchBytes: 1024})
	transferSome(t, bank, 50, 200) // plenty of stable log to ship

	server, client := net.Pipe()
	defer client.Close()
	serveDone := make(chan error, 1)
	go func() { serveDone <- p.Serve(server) }()

	resume := word.LSN(1)
	if err := repl.WriteMsg(client, repl.MsgHello, repl.HelloPayload(resume, "slowpoke")); err != nil {
		t.Fatal(err)
	}
	if kind, _, err := repl.ReadMsg(client); err != nil || kind != repl.MsgHelloAck {
		t.Fatalf("handshake: kind=%s err=%v", repl.KindName(kind), err)
	}

	// Drain frames without acking; the stream must dry up at the bound.
	received := word.LSN(0)
	for {
		client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		kind, payload, err := repl.ReadMsg(client)
		if err != nil {
			break // stalled: no more frames without an ack
		}
		if kind != repl.MsgFrames {
			t.Fatalf("expected FRAMES, got %s", repl.KindName(kind))
		}
		start, _, frames, err := repl.ParseFrames(payload)
		if err != nil {
			t.Fatal(err)
		}
		received = start + word.LSN(len(frames))
	}
	client.SetReadDeadline(time.Time{})
	if got := int(received - resume); got > maxUnacked+1024 {
		t.Fatalf("shipped %d unacked bytes, bound is %d (+1 batch)", got, maxUnacked)
	}
	if p.Stalls() == 0 {
		t.Fatal("no backpressure stall was counted")
	}

	// One ack releases the stall and shipping resumes.
	if err := repl.WriteMsg(client, repl.MsgAck, repl.AckPayload(received)); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(time.Second))
	kind, _, err := repl.ReadMsg(client)
	if err != nil || kind != repl.MsgFrames {
		t.Fatalf("no frames after ack: kind=%s err=%v", repl.KindName(kind), err)
	}
	client.Close()
	<-serveDone
}
