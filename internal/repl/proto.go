// Package repl implements log-shipping replication for the stable heap:
// a primary-side shipper that streams forced WAL frames to standbys, and
// a standby-side applier that runs continuous redo so the replica's
// (disk, stable log) pair always looks like a primary that crashed at
// the applied LSN. Promotion is therefore ordinary bounded recovery over
// the standby's own devices — analysis from the last shipped checkpoint,
// redo of the shipped tail, undo of loser transactions, and resumption
// of any in-flight incremental collection. See DESIGN.md §9.
//
// The wire protocol is four message kinds over any byte stream
// (net.Pipe in-process, TCP across machines), each framed as
//
//	[u8 kind][u32 payloadLen][u32 crc32(payload)][payload]
//
// little-endian, CRC-checked on receipt. Log frames inside a FRAMES
// payload are shipped verbatim — they carry their own length prefix and
// CRC (wal codec framing), so the standby appends them byte-for-byte at
// the same LSNs the primary assigned.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"stableheap/internal/word"
)

// Message kinds. A session is: standby sends HELLO (resume LSN + name),
// primary answers HELLO_ACK (ok | resume point truncated), then the
// primary streams FRAMES while the standby streams ACKs back.
const (
	msgHello    byte = 1
	msgHelloAck byte = 2
	msgFrames   byte = 3
	msgAck      byte = 4
)

// HELLO_ACK statuses.
const (
	helloAckOK        byte = 0 // shipping resumes at the requested LSN
	helloAckTruncated byte = 1 // resume LSN reclaimed; standby needs a new base backup
)

// maxMsgBytes bounds a single message so a corrupt length prefix cannot
// force an unbounded allocation.
const maxMsgBytes = 16 << 20

// ErrResumeTruncated is returned when the standby's resume LSN has been
// truncated away on the primary: the replica is unserviceably stale and
// must be re-seeded from a fresh base backup. Reconnecting cannot help,
// so Standby.Run treats it as terminal rather than backing off.
var ErrResumeTruncated = errors.New("repl: resume LSN truncated on primary; standby needs a new base backup")

// writeMsg frames and writes one protocol message.
func writeMsg(w io.Writer, kind byte, payload []byte) error {
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsg reads and validates one protocol message.
func readMsg(r io.Reader) (byte, []byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	kind := hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:5])
	sum := binary.LittleEndian.Uint32(hdr[5:9])
	if n > maxMsgBytes {
		return 0, nil, fmt.Errorf("repl: message length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, fmt.Errorf("repl: %s payload failed CRC check", kindName(kind))
	}
	return kind, payload, nil
}

func kindName(kind byte) string {
	switch kind {
	case msgHello:
		return "HELLO"
	case msgHelloAck:
		return "HELLO_ACK"
	case msgFrames:
		return "FRAMES"
	case msgAck:
		return "ACK"
	case MsgResolveQuery:
		return "RESOLVE_QUERY"
	case MsgResolveVerdict:
		return "RESOLVE_VERDICT"
	}
	return fmt.Sprintf("kind-%d", kind)
}

// HELLO payload: [u64 resumeLSN][standby name].
func helloPayload(resume word.LSN, name string) []byte {
	p := make([]byte, 8+len(name))
	binary.LittleEndian.PutUint64(p[0:8], uint64(resume))
	copy(p[8:], name)
	return p
}

func parseHello(p []byte) (word.LSN, string, error) {
	if len(p) < 8 {
		return 0, "", fmt.Errorf("repl: HELLO payload too short (%d bytes)", len(p))
	}
	return word.LSN(binary.LittleEndian.Uint64(p[0:8])), string(p[8:]), nil
}

// HELLO_ACK payload: [u8 status][u64 lsn] — the accepted resume LSN on
// OK, the primary's stable horizon on rejection (so the standby can
// report how far behind it fell).
func helloAckPayload(status byte, lsn word.LSN) []byte {
	p := make([]byte, 9)
	p[0] = status
	binary.LittleEndian.PutUint64(p[1:9], uint64(lsn))
	return p
}

func parseHelloAck(p []byte) (byte, word.LSN, error) {
	if len(p) != 9 {
		return 0, 0, fmt.Errorf("repl: HELLO_ACK payload is %d bytes, want 9", len(p))
	}
	return p[0], word.LSN(binary.LittleEndian.Uint64(p[1:9])), nil
}

// FRAMES payload: [u64 startLSN][u64 primary stable LSN][raw wal frames].
// startLSN is the LSN of the first frame; consecutive frames are
// self-delimiting via their length prefixes (wal.FrameLen). The stable
// LSN rides along so the standby can measure its replication lag.
func framesPayload(start, stable word.LSN, frames []byte) []byte {
	p := make([]byte, 16+len(frames))
	binary.LittleEndian.PutUint64(p[0:8], uint64(start))
	binary.LittleEndian.PutUint64(p[8:16], uint64(stable))
	copy(p[16:], frames)
	return p
}

func parseFrames(p []byte) (start, stable word.LSN, frames []byte, err error) {
	if len(p) < 16 {
		return 0, 0, nil, fmt.Errorf("repl: FRAMES payload too short (%d bytes)", len(p))
	}
	return word.LSN(binary.LittleEndian.Uint64(p[0:8])),
		word.LSN(binary.LittleEndian.Uint64(p[8:16])), p[16:], nil
}

// ACK payload: [u64 appliedLSN] — everything below is applied AND forced
// to the standby's stable log, so the primary may release it.
func ackPayload(applied word.LSN) []byte {
	p := make([]byte, 8)
	binary.LittleEndian.PutUint64(p, uint64(applied))
	return p
}

func parseAck(p []byte) (word.LSN, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("repl: ACK payload is %d bytes, want 8", len(p))
	}
	return word.LSN(binary.LittleEndian.Uint64(p)), nil
}
