package repl

import (
	"bytes"
	"net"
	"testing"

	"stableheap/internal/word"
)

func TestResolvePayloadRoundTrip(t *testing.T) {
	part, id, err := ParseResolveQuery(ResolveQueryPayload(3, 77))
	if err != nil {
		t.Fatal(err)
	}
	if part != 3 || id != 77 {
		t.Fatalf("query round trip: got (%d, %d)", part, id)
	}
	for _, commit := range []bool{true, false} {
		c, gid, err := ParseResolveVerdict(ResolveVerdictPayload(commit, 9))
		if err != nil {
			t.Fatal(err)
		}
		if c != commit || gid != 9 {
			t.Fatalf("verdict round trip: got (%v, %d)", c, gid)
		}
	}
	if _, _, err := ParseResolveQuery([]byte{1}); err == nil {
		t.Fatal("short query payload must be rejected")
	}
	if _, _, err := ParseResolveVerdict(nil); err == nil {
		t.Fatal("short verdict payload must be rejected")
	}
}

// TestResolveOverPipe runs one query/verdict exchange over a real duplex
// byte stream, CRC framing included — the shape the shard resolver uses.
func TestResolveOverPipe(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	done := make(chan error, 1)
	go func() {
		kind, payload, err := ReadMsg(server)
		if err != nil {
			done <- err
			return
		}
		if kind != MsgResolveQuery {
			done <- bytes.ErrTooLarge // any sentinel: wrong kind
			return
		}
		part, id, err := ParseResolveQuery(payload)
		if err != nil {
			done <- err
			return
		}
		done <- WriteMsg(server, MsgResolveVerdict, ResolveVerdictPayload(part == 1 && id == 42, 5))
	}()
	if err := WriteMsg(client, MsgResolveQuery, ResolveQueryPayload(1, word.TxID(42))); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadMsg(client)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MsgResolveVerdict {
		t.Fatalf("got kind %d, want RESOLVE_VERDICT", kind)
	}
	commit, gid, err := ParseResolveVerdict(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !commit || gid != 5 {
		t.Fatalf("verdict (%v, %d), want (true, 5)", commit, gid)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
