// Command bank runs the classic transactional-recovery acid test on the
// stable heap: a set of accounts, a stream of random transfers, a crash in
// the middle of the stream, and an audit proving the total balance is
// exactly what it was — no lost or phantom money — while garbage
// collection runs underneath the whole time.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stableheap"
	"stableheap/internal/workload"
)

func main() {
	cfg := stableheap.DefaultConfig()
	h := stableheap.Open(cfg)

	const accounts, initial = 64, 10_000
	bank, err := workload.NewBank(h, 0, accounts, 8, initial)
	if err != nil {
		log.Fatal(err)
	}
	want := uint64(accounts * initial)
	fmt.Printf("created %d accounts, total balance %d\n", accounts, want)

	rng := rand.New(rand.NewSource(2026))
	committed, err := bank.RunMix(rng, 500, 250)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran 500 transfers (%d committed)\n", committed)

	// Checkpoint mid-stream (cheap: one record, no synchronous writes).
	h.Checkpoint()

	more, err := bank.RunMix(rng, 500, 250)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran 500 more transfers (%d committed)\n", more)

	// Crash with a transfer's worth of state potentially anywhere: page
	// cache, volatile log tail, mid-flight structures.
	disk, logDev := h.Crash()
	fmt.Println("crash!")

	h2, err := stableheap.Recover(cfg, disk, logDev)
	if err != nil {
		log.Fatal(err)
	}
	res := h2.Internal().LastRecovery()
	fmt.Printf("recovered: redo from LSN %d (%d records), %d losers rolled back\n",
		res.RedoStart, res.RedoScanned, len(res.Losers))

	bank.Reattach(h2)
	total, err := bank.Total()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit: total balance = %d (expected %d)\n", total, want)
	if total != want {
		log.Fatal("MONEY WAS CREATED OR DESTROYED — recovery bug")
	}
	fmt.Println("conservation holds: every committed transfer is durable, every interrupted one is gone")

	s := h2.Stats()
	fmt.Printf("collections while banking: %d volatile, %d stable; %d newly stable objects moved\n",
		s.VolatileCollections, s.StableCollections, s.NewlyStableMoved)
}
