// Command quickstart shows the stable heap's core promise in a dozen
// lines: allocate objects, make them reachable from a stable root, commit
// — then lose the machine and get exactly the committed state back.
package main

import (
	"fmt"
	"log"

	"stableheap"
)

func main() {
	cfg := stableheap.DefaultConfig()
	h := stableheap.Open(cfg)

	// A transaction builds a small linked list and publishes it.
	tx := h.Begin()
	var head *stableheap.Ref
	for i := 3; i >= 1; i-- {
		node, err := tx.Alloc(1 /*typeID*/, 1 /*ptrs*/, 1 /*data*/)
		if err != nil {
			log.Fatal(err)
		}
		must(tx.SetData(node, 0, uint64(i*100)))
		must(tx.SetPtr(node, 0, head))
		head = node
	}
	// Everything above is volatile until this store makes it reachable
	// from a stable root and the transaction commits: at commit the
	// stability tracker logs the objects' initial values — they are now
	// durable.
	must(tx.SetRoot(0, head))
	must(tx.Commit())
	fmt.Println("committed a 3-node list under stable root 0")

	// A second transaction's work is aborted: no trace survives.
	tx2 := h.Begin()
	r, _ := tx2.Root(0)
	must(tx2.SetData(r, 0, 999999))
	must(tx2.Abort())
	fmt.Println("aborted an update (value restored in place)")

	// Power failure. Main memory, active transactions and the unforced
	// log tail are gone; the disk and stable log survive.
	disk, logDev := h.Crash()
	fmt.Println("crash!")

	h2, err := stableheap.Recover(cfg, disk, logDev)
	if err != nil {
		log.Fatal(err)
	}
	tx3 := h2.Begin()
	defer tx3.Abort()
	node, err := tx3.Root(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("recovered list:")
	for node != nil {
		v, err := tx3.Data(node, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %d", v)
		if node, err = tx3.Ptr(node, 0); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()

	s := h2.Stats()
	fmt.Printf("recovery stats: %d redo records scanned, %d losers rolled back\n",
		h2.Internal().LastRecovery().RedoScanned, len(h2.Internal().LastRecovery().Losers))
	fmt.Printf("log: %d appends, %d synchronous forces\n", s.LogAppends, s.LogForces)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
