// Command oodb drives an OO7-flavoured object-database workload — the
// paper's object-oriented-database audience — through the stable heap:
// build a module of assemblies, composite parts and atomic parts, run
// traversals and updates, replace whole composite subgraphs (creating
// garbage the collector reclaims and new objects the tracker stabilizes),
// and crash-recover the lot.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stableheap"
	"stableheap/internal/workload"
)

func main() {
	cfg := stableheap.DefaultConfig()
	h := stableheap.Open(cfg)
	rng := rand.New(rand.NewSource(77))

	oo7 := workload.OO7Config{
		Assemblies: 8, Composites: 6, AtomsPerComp: 10, DocWords: 8, ConnPerAtom: 3,
	}
	db, err := workload.BuildOO7(h, 0, oo7, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built OO7 module: %d objects (%d atomic parts)\n",
		oo7.Objects(), oo7.Assemblies*oo7.Composites*oo7.AtomsPerComp)

	n, err := db.TraverseT1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T1 traversal visited %d atomic parts\n", n)

	// The update mix: T2-style data updates plus structural churn.
	for i := 0; i < 60; i++ {
		if err := db.UpdateT2(rng); err != nil {
			log.Fatal(err)
		}
		if i%4 == 0 {
			if err := db.ReplaceComposite(rng); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("ran 60 T2 updates and 15 composite replacements")

	// Let both collectors do a full pass over the churned database.
	moved, err := h.CollectVolatile()
	if err != nil {
		log.Fatal(err)
	}
	h.CollectStable()
	if err := db.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collections done (%d newly stable objects moved); database intact\n", moved)

	s := h.Stats()
	fmt.Printf("log volume: %d bytes over %d records; %d synchronous forces (one per commit)\n",
		s.LogBytesAppended, s.LogAppends, s.LogForces)
	fmt.Printf("division at work: %d logged updates vs %d unlogged volatile writes\n",
		s.LoggedUpdates, s.VolatileWrites)

	disk, logDev := h.Crash()
	h2, err := stableheap.Recover(cfg, disk, logDev)
	if err != nil {
		log.Fatal(err)
	}
	db.Reattach(h2)
	if err := db.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("crash + recovery: full module traversal passes")
}
