// Command cad plays the paper's motivating scenario (Ch. 1): an
// interactive computer-aided-design session over a large persistent design
// tree. The designer edits continuously — including hitting undo — while
// the atomic incremental collector reorganizes the stable heap underneath,
// and the pauses the designer experiences stay bounded by single
// page-scans rather than whole-heap traversals.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stableheap"
	"stableheap/internal/workload"
)

func main() {
	cfg := stableheap.DefaultConfig()
	h := stableheap.Open(cfg)

	rng := rand.New(rand.NewSource(7))
	tree := workload.CADConfig{Depth: 4, Fanout: 4, Leaf: 8}
	ct, err := workload.BuildCAD(h, 0, tree, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built design tree: depth %d, fanout %d, %d leaf features\n",
		tree.Depth, tree.Fanout, tree.Leaves())

	// Move the design into the stable area and force one full
	// reorganization so later sessions run against relocated objects.
	h.CollectVolatile()
	h.CollectStable()

	// The editing day: sessions interleave with an in-flight incremental
	// collection; ~25 % of sessions end in undo (abort).
	h.StartStableCollection()
	commits, aborts := 0, 0
	for i := 0; i < 300; i++ {
		ok, err := ct.EditSession(rng, 0.25)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			commits++
		} else {
			aborts++
		}
		if i%10 == 0 {
			if err := ct.ReplaceSubtree(rng); err != nil {
				log.Fatal(err)
			}
		}
		h.StepStable() // the collector's incremental quantum
	}
	for h.StepStable() {
	}
	fmt.Printf("editing day: %d sessions committed, %d undone\n", commits, aborts)

	if n, err := ct.CountLeaves(); err != nil || n != tree.Leaves() {
		log.Fatalf("design corrupted: %d leaves, err=%v", n, err)
	}
	fmt.Println("design tree intact after collections and undos")

	gcs := h.Internal().GCStats()
	fmt.Printf("stable collections: %d (copied %d objects, %d pages scanned)\n",
		gcs.Collections, gcs.CopiedObjs, gcs.ScannedPages)
	if gcs.Flip.Count > 0 {
		fmt.Printf("pause profile: flip max %v; scan-step p99 %v / max %v over %d steps; %d barrier traps (max %v)\n",
			gcs.Flip.MaxDur(), gcs.Step.QuantileDur(0.99), gcs.Step.MaxDur(), gcs.Step.Count,
			gcs.Trap.Count, gcs.Trap.MaxDur())
	}

	// End of day: crash instead of clean shutdown, then reopen tomorrow.
	disk, logDev := h.Crash()
	h2, err := stableheap.Recover(cfg, disk, logDev)
	if err != nil {
		log.Fatal(err)
	}
	ct.Reattach(h2)
	if n, err := ct.CountLeaves(); err != nil || n != tree.Leaves() {
		log.Fatalf("design lost overnight: %d leaves, err=%v", n, err)
	}
	fmt.Println("overnight crash: the committed design reopened intact")
}
