// Command queue builds a durable work queue on the stable heap — the
// uniform storage model at work: enqueue and dequeue are ordinary pointer
// operations on ordinary objects; durability comes solely from reaching a
// stable root at commit. Producers and consumers run as concurrent
// goroutines under group commit; the machine then dies twice — once
// normally (disk survives) and once totally (media failure, rebuilt from
// the log archive) — and the queue's exactly-once accounting holds both
// times.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"stableheap"
)

// Queue layout: root slot 0 → queue header object
//
//	header: ptr[0]=head ptr[1]=tail, data[0]=enqueued data[1]=dequeued
//	node:   ptr[0]=next,             data[0]=job id
const (
	slotQueue = 0
	typeHdr   = 10
	typeNode  = 11
)

func enqueue(h *stableheap.Heap, job uint64) error {
	tx := h.Begin()
	hdr, err := tx.Root(slotQueue)
	if err != nil {
		tx.Abort()
		return err
	}
	node, err := tx.Alloc(typeNode, 1, 1)
	if err != nil {
		tx.Abort()
		return err
	}
	if err := tx.SetData(node, 0, job); err != nil {
		tx.Abort()
		return err
	}
	tail, err := tx.Ptr(hdr, 1)
	if err != nil {
		tx.Abort()
		return err
	}
	if tail == nil {
		if err := tx.SetPtr(hdr, 0, node); err != nil {
			tx.Abort()
			return err
		}
	} else if err := tx.SetPtr(tail, 0, node); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.SetPtr(hdr, 1, node); err != nil {
		tx.Abort()
		return err
	}
	n, err := tx.Data(hdr, 0)
	if err != nil {
		tx.Abort()
		return err
	}
	if err := tx.SetData(hdr, 0, n+1); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// dequeue removes the head job; ok is false when the queue is empty.
func dequeue(h *stableheap.Heap) (job uint64, ok bool, err error) {
	tx := h.Begin()
	abort := func(e error) (uint64, bool, error) { tx.Abort(); return 0, false, e }
	hdr, err := tx.Root(slotQueue)
	if err != nil {
		return abort(err)
	}
	head, err := tx.Ptr(hdr, 0)
	if err != nil {
		return abort(err)
	}
	if head == nil {
		tx.Abort()
		return 0, false, nil
	}
	job, err = tx.Data(head, 0)
	if err != nil {
		return abort(err)
	}
	next, err := tx.Ptr(head, 0)
	if err != nil {
		return abort(err)
	}
	if err := tx.SetPtr(hdr, 0, next); err != nil {
		return abort(err)
	}
	if next == nil {
		if err := tx.SetPtr(hdr, 1, nil); err != nil {
			return abort(err)
		}
	}
	n, err := tx.Data(hdr, 1)
	if err != nil {
		return abort(err)
	}
	if err := tx.SetData(hdr, 1, n+1); err != nil {
		return abort(err)
	}
	return job, true, tx.Commit()
}

func counters(h *stableheap.Heap) (enq, deq uint64) {
	tx := h.Begin()
	defer tx.Abort()
	hdr, err := tx.Root(slotQueue)
	if err != nil {
		log.Fatal(err)
	}
	enq, _ = tx.Data(hdr, 0)
	deq, _ = tx.Data(hdr, 1)
	return
}

func main() {
	cfg := stableheap.DefaultConfig()
	cfg.GroupCommitWindow = 500 * time.Microsecond
	cfg.LockWait = 250 * time.Millisecond
	h := stableheap.Open(cfg)

	// Create the durable queue header.
	tx := h.Begin()
	hdr, err := tx.Alloc(typeHdr, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.SetRoot(slotQueue, hdr); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Concurrent producers and consumers. The queue header serializes
	// them (object-granular locks) — conflicts retry.
	const producers, jobsEach = 3, 40
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for j := 0; j < jobsEach; j++ {
				for {
					err := enqueue(h, uint64(p*1000+j))
					if err == nil {
						break
					}
					if !errors.Is(err, stableheap.ErrConflict) {
						log.Fatal(err)
					}
				}
			}
		}(p)
	}
	consumed := 0
	var cmu sync.Mutex
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; {
				_, ok, err := dequeue(h)
				if errors.Is(err, stableheap.ErrConflict) {
					continue
				}
				if err != nil {
					log.Fatal(err)
				}
				if ok {
					cmu.Lock()
					consumed++
					cmu.Unlock()
					i++
				}
			}
		}()
	}
	wg.Wait()
	enq, deq := counters(h)
	fmt.Printf("produced %d, consumed %d (queue holds %d)\n", enq, deq, enq-deq)
	gs := h.Internal().GroupCommitStats()
	fmt.Printf("group commit: %d commits, %d forces (largest batch %d) — a single queue\n",
		gs.Commits, gs.Forces, gs.MaxWait)
	fmt.Println("  (the queue header serializes committers, so batches stay small here;")
	fmt.Println("   see `shbench e13` for group commit on independent objects)")

	// Crash 1: ordinary system failure.
	disk, logDev := h.Crash()
	h2, err := stableheap.Recover(cfg, disk, logDev)
	if err != nil {
		log.Fatal(err)
	}
	enq2, deq2 := counters(h2)
	if enq2 != enq || deq2 != deq {
		log.Fatalf("accounting broken after crash: %d/%d vs %d/%d", enq2, deq2, enq, deq)
	}
	fmt.Printf("after crash+recover: %d produced, %d consumed — exactly-once accounting holds\n", enq2, deq2)

	// Drain a few more, then total media failure: the disk is destroyed
	// and the heap rebuilt from the log alone.
	for i := 0; i < 5; i++ {
		if _, _, err := dequeue(h2); err != nil && !errors.Is(err, stableheap.ErrConflict) {
			log.Fatal(err)
		}
	}
	enq3, deq3 := counters(h2)
	_, logOnly := h2.Crash()
	h3, err := stableheap.RecoverFromLog(cfg, logOnly)
	if err != nil {
		log.Fatal(err)
	}
	enq4, deq4 := counters(h3)
	if enq4 != enq3 || deq4 != deq3 {
		log.Fatalf("media recovery broke accounting: %d/%d vs %d/%d", enq4, deq4, enq3, deq3)
	}
	fmt.Printf("after TOTAL media failure (rebuilt from the log archive): %d produced, %d consumed — still exact\n", enq4, deq4)
}
