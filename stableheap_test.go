package stableheap

import (
	"bytes"
	"testing"
)

func testCfg() Config {
	return Config{
		PageSize:      256,
		StableWords:   8 * 1024,
		VolatileWords: 4 * 1024,
		Divided:       true,
		Barrier:       Ellis,
		Incremental:   true,
	}
}

func TestQuickstartFlow(t *testing.T) {
	h := Open(testCfg())
	tx := h.Begin()
	obj, err := tx.Alloc(1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetData(obj, 0, 42); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRoot(0, obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	disk, log := h.Crash()
	h2, err := Recover(testCfg(), disk, log)
	if err != nil {
		t.Fatal(err)
	}
	tx2 := h2.Begin()
	defer tx2.Abort()
	obj2, err := tx2.Root(0)
	if err != nil || obj2 == nil {
		t.Fatalf("root lost: %v", err)
	}
	if v, _ := tx2.Data(obj2, 0); v != 42 {
		t.Fatalf("value = %d, want 42", v)
	}
}

func TestDataBytesRoundTrip(t *testing.T) {
	h := Open(testCfg())
	tx := h.Begin()
	msg := []byte("atomic incremental garbage collection")
	words := (len(msg) + 7) / 8
	obj, _ := tx.Alloc(2, 0, words)
	if err := tx.SetDataBytes(obj, 0, msg); err != nil {
		t.Fatal(err)
	}
	got, err := tx.DataBytes(obj, 0, len(msg))
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("round trip: %q vs %q (%v)", got, msg, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestShape(t *testing.T) {
	h := Open(testCfg())
	tx := h.Begin()
	defer tx.Abort()
	obj, _ := tx.Alloc(7, 2, 3)
	typeID, np, nd, err := tx.Shape(obj)
	if err != nil || typeID != 7 || np != 2 || nd != 3 {
		t.Fatalf("shape = %d %d %d (%v)", typeID, np, nd, err)
	}
}

func TestStatsPopulate(t *testing.T) {
	h := Open(testCfg())
	tx := h.Begin()
	a, _ := tx.Alloc(1, 1, 1)
	b, _ := tx.Alloc(1, 0, 1)
	tx.SetPtr(a, 0, b)
	tx.SetRoot(0, a)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	h.CollectVolatile()
	h.CollectStable()
	s := h.Stats()
	if s.TxCommitted != 2 { // bootstrap + ours
		t.Fatalf("committed = %d", s.TxCommitted)
	}
	if s.TrackedObjects != 2 || s.NewlyStableMoved != 2 {
		t.Fatalf("tracking stats: %+v", s)
	}
	if s.StableCollections != 1 || s.CopiedObjects == 0 {
		t.Fatalf("gc stats: %+v", s)
	}
	if s.LogForces == 0 || s.LogBytesAppended == 0 {
		t.Fatalf("log stats: %+v", s)
	}
}

func TestConflictSurface(t *testing.T) {
	h := Open(testCfg())
	t1 := h.Begin()
	obj, _ := t1.Alloc(1, 0, 1)
	t1.SetRoot(0, obj)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	ta := h.Begin()
	ra, _ := ta.Root(0)
	ta.SetData(ra, 0, 1)
	tb := h.Begin()
	rb, _ := tb.Root(0)
	if _, err := tb.Data(rb, 0); err != ErrConflict {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	tb.Abort()
	if err := ta.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseThenRecover(t *testing.T) {
	h := Open(testCfg())
	tx := h.Begin()
	obj, _ := tx.Alloc(1, 0, 1)
	tx.SetData(obj, 0, 9)
	tx.SetRoot(3, obj)
	tx.Commit()
	h.Close()
	disk, log := h.Devices()
	h2, err := Recover(testCfg(), disk, log)
	if err != nil {
		t.Fatal(err)
	}
	tx2 := h2.Begin()
	defer tx2.Abort()
	r, _ := tx2.Root(3)
	if v, _ := tx2.Data(r, 0); v != 9 {
		t.Fatal("value lost across clean shutdown")
	}
}

func TestIncrementalCollectionViaPublicAPI(t *testing.T) {
	h := Open(testCfg())
	tx := h.Begin()
	var prev *Ref
	for i := 0; i < 30; i++ {
		n, err := tx.Alloc(1, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		tx.SetData(n, 0, uint64(i))
		tx.SetPtr(n, 0, prev)
		prev = n
	}
	tx.SetRoot(0, prev)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	h.CollectVolatile()
	h.StartStableCollection()
	steps := 0
	for h.StepStable() {
		steps++
		if steps > 10000 {
			t.Fatal("collection did not finish")
		}
	}
	tx2 := h.Begin()
	defer tx2.Abort()
	n, _ := tx2.Root(0)
	count := 0
	for n != nil {
		count++
		n, _ = tx2.Ptr(n, 0)
	}
	if count != 30 {
		t.Fatalf("walked %d nodes, want 30", count)
	}
}

func TestPublicAddDataAndPrepare(t *testing.T) {
	h := Open(testCfg())
	tx := h.Begin()
	c, err := tx.Alloc(1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetData(c, 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRoot(0, c); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	h.CollectVolatile()

	// A prepared delta survives a crash in-doubt and resolves to commit.
	tx2 := h.Begin()
	c2, _ := tx2.Root(0)
	if err := tx2.AddData(c2, 0, 11); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Prepare(); err != nil {
		t.Fatal(err)
	}
	id := tx2.ID()
	disk, logDev := h.Crash()
	h2, err := Recover(testCfg(), disk, logDev)
	if err != nil {
		t.Fatal(err)
	}
	ids := h2.InDoubt()
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("in-doubt = %v", ids)
	}
	if err := h2.ResolveCommit(id); err != nil {
		t.Fatal(err)
	}
	tx3 := h2.Begin()
	defer tx3.Abort()
	c3, _ := tx3.Root(0)
	if v, _ := tx3.Data(c3, 0); v != 111 {
		t.Fatalf("value = %d, want 111", v)
	}
}

func TestPublicMediaRecovery(t *testing.T) {
	h := Open(testCfg())
	tx := h.Begin()
	obj, _ := tx.Alloc(1, 0, 1)
	tx.SetData(obj, 0, 64)
	tx.SetRoot(5, obj)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	_, logDev := h.Crash() // the disk is "destroyed"
	h2, err := RecoverFromLog(testCfg(), logDev)
	if err != nil {
		t.Fatal(err)
	}
	tx2 := h2.Begin()
	defer tx2.Abort()
	r, _ := tx2.Root(5)
	if v, _ := tx2.Data(r, 0); v != 64 {
		t.Fatalf("value after media recovery = %d", v)
	}
}
