// Command shtrace decodes a flight-recorder (black-box) dump into a
// human-readable timeline or a Chrome trace_event JSON document.
//
// The dump is the byte stream a heap's flight journal accumulated —
// written by core.Config.FlightRecorder, exported by Heap.FlightDump or
// shchaos -blackbox. It may contain frames from several boots (a chaos
// run crashes and recovers many times); by default the newest boot's
// events are shown, which is exactly the pre-crash timeline after a
// crash.
//
// Usage:
//
//	shtrace -in dump.bin              # timeline of the newest boot
//	shtrace -in dump.bin -tail 20     # only the last 20 events
//	shtrace -in dump.bin -all         # every boot, oldest first
//	shtrace -in dump.bin -chrome t.json  # Chrome trace (about://tracing)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stableheap/internal/obs"
)

func main() {
	in := flag.String("in", "", "black-box dump file to decode (required)")
	chrome := flag.String("chrome", "", "also write a Chrome trace_event JSON file")
	tail := flag.Int("tail", 0, "print only the last N events per boot (0: all)")
	all := flag.Bool("all", false, "print every boot in the journal, oldest first (default: newest only)")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fail(err)
	}
	boots, err := obs.DecodeDumpBoots(data)
	if err != nil {
		fail(fmt.Errorf("decoding %s: %w", *in, err))
	}
	if len(boots) == 0 {
		fmt.Println("empty dump: no events recorded")
		return
	}
	show := boots[len(boots)-1:]
	if *all {
		show = boots
	}
	for _, b := range show {
		evs := b.Events
		if len(evs) == 0 {
			continue
		}
		fmt.Printf("boot %s — %d events (seq %d..%d)\n",
			time.Unix(0, b.Boot).UTC().Format(time.RFC3339Nano),
			len(evs), evs[0].Seq, evs[len(evs)-1].Seq)
		if *tail > 0 {
			fmt.Print(obs.FormatTail(evs, *tail))
		} else {
			fmt.Print(obs.FormatEvents(evs))
		}
	}
	evs := boots[len(boots)-1].Events
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fail(err)
		}
		if err := obs.WriteEventsChrome(f, evs); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", *chrome)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "shtrace:", err)
	os.Exit(1)
}
