// Command shrepl demonstrates log-shipping replication end to end: a
// primary runs a bank-transfer workload while a warm standby applies the
// shipped log through continuous redo, a read-only snapshot is taken on
// the standby mid-stream, then the primary is crashed and the standby is
// promoted — bounded recovery over its own devices — and the promoted
// heap is verified (balance conservation) and keeps serving writes.
//
// Usage:
//
//	shrepl                     # in-process pipe, human-readable walkthrough
//	shrepl -tcp                # ship over a real loopback TCP connection
//	shrepl -midgc              # crash with an incremental collection in flight
//	shrepl -json               # failover summary + repl metrics as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"time"

	"stableheap"
	"stableheap/internal/obs"
	"stableheap/internal/repl"
	"stableheap/internal/workload"
)

func main() {
	ops := flag.Int("ops", 2000, "transfer transactions per burst (two bursts run)")
	accounts := flag.Int("accounts", 128, "bank accounts")
	midGC := flag.Bool("midgc", false, "leave an incremental stable collection in flight at the crash")
	useTCP := flag.Bool("tcp", false, "ship over a loopback TCP connection instead of an in-process pipe")
	asJSON := flag.Bool("json", false, "print a JSON summary instead of the walkthrough")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	cfg := stableheap.DefaultConfig()
	cfg.StableWords = 64 * 1024
	cfg.VolatileWords = 16 * 1024

	say := func(format string, args ...any) {
		if !*asJSON {
			fmt.Printf(format+"\n", args...)
		}
	}

	// Primary with a bank workload.
	h := stableheap.Open(cfg)
	fanout := 1
	for fanout*fanout < *accounts {
		fanout++
	}
	bank, err := workload.NewBank(h, 0, *accounts, fanout, 1000)
	check(err)
	want := uint64(*accounts) * 1000
	prim := repl.NewPrimary(h.Internal(), repl.PrimaryConfig{})

	// Warm standby from a base backup, fed over a pipe or loopback TCP.
	disk, logDev := h.Internal().BaseBackup()
	sb, err := repl.NewStandby(repl.StandbyConfig{Name: "shrepl-standby", Heap: cfg}, disk, logDev)
	check(err)
	dial, transport := dialer(prim, *useTCP)
	runDone := make(chan error, 1)
	go func() { runDone <- sb.Run(dial) }()
	say("standby %q attached over %s, resuming from LSN %d", sb.Name(), transport, sb.AppliedLSN())

	// Burst one, then a consistent read on the standby while shipping
	// continues.
	rng := rand.New(rand.NewSource(*seed))
	_, err = bank.RunMix(rng, *ops, 50)
	check(err)
	waitCaughtUp(h, sb)
	say("burst 1: %d transfers shipped; standby applied %s, lag %d bytes",
		*ops, lsnBytes(sb.Metrics().Counter("repl_applied_bytes_total")), sb.LagBytes())

	snap, at, err := sb.ReadSnapshot()
	check(err)
	bank.Reattach(stableheap.AdoptInternal(snap))
	total, err := bank.Total()
	check(err)
	bank.Reattach(h)
	if total != want {
		log.Fatalf("shrepl: standby snapshot total %d, want %d", total, want)
	}
	say("standby snapshot read at LSN %d: bank total %d (conserved)", at, total)

	// Burst two, optionally leaving an incremental collection in flight,
	// then pull the plug.
	_, err = bank.RunMix(rng, *ops, 50)
	check(err)
	if *midGC {
		_, err := h.CollectVolatile()
		check(err)
		h.StartStableCollection()
		h.StepStable()
		say("incremental stable collection started and left in flight")
	}
	h.Internal().Log().ForceAll()
	waitCaughtUp(h, sb)

	h.Crash()
	say("primary crashed; promoting standby...")
	promoted, stats, err := sb.Promote()
	check(err)
	served := stableheap.AdoptInternal(promoted)
	bank.Reattach(served)
	total, err = bank.Total()
	check(err)
	if total != want {
		log.Fatalf("shrepl: promoted bank total %d, want %d", total, want)
	}
	_, err = bank.RunMix(rng, *ops/4, 50)
	check(err)
	total, err = bank.Total()
	check(err)
	if total != want {
		log.Fatalf("shrepl: post-promotion bank total %d, want %d", total, want)
	}
	<-runDone

	say("promoted in %s: redo from LSN %d, %d records scanned, %d losers undone, %d in-doubt, gc-resumed=%v",
		stats.Duration.Round(time.Microsecond), stats.RedoStart, stats.Scanned,
		stats.Losers, stats.InDoubt, stats.GCResumed)
	say("promoted heap verified (total %d) and served %d more transfers", total, *ops/4)

	metrics := obs.NewSnapshot()
	metrics.Merge(prim.Metrics())
	metrics.Merge(sb.Metrics())
	if *asJSON {
		out := struct {
			Transport   string       `json:"transport"`
			FailoverNs  int64        `json:"failover_ns"`
			AppliedLSN  uint64       `json:"applied_lsn"`
			RedoScanned int          `json:"redo_scanned"`
			Losers      int          `json:"losers"`
			InDoubt     int          `json:"in_doubt"`
			GCResumed   bool         `json:"gc_resumed"`
			BankTotal   uint64       `json:"bank_total"`
			Metrics     obs.Snapshot `json:"metrics"`
		}{transport, stats.Duration.Nanoseconds(), uint64(stats.AppliedLSN),
			stats.Scanned, stats.Losers, stats.InDoubt, stats.GCResumed, total, metrics}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(out))
		return
	}
	fmt.Printf("replication: %d batches shipped (%d stalls), %d batches applied, %d reconnects\n",
		metrics.Counter("repl_ship_batches_total"), metrics.Counter("repl_backpressure_stalls_total"),
		metrics.Counter("repl_apply_batches_total"), metrics.Counter("repl_reconnects_total"))
	apply := metrics.Hist("repl_apply_ns")
	fmt.Printf("apply latency: p50 %v  p99 %v  max %v\n",
		apply.QuantileDur(0.5), apply.QuantileDur(0.99), apply.MaxDur())
}

// dialer wires the shipping transport: every dial spawns a primary-side
// Serve for the new connection.
func dialer(prim *repl.Primary, useTCP bool) (func() (net.Conn, error), string) {
	if !useTCP {
		return func() (net.Conn, error) {
			server, client := net.Pipe()
			go prim.Serve(server)
			return client, nil
		}, "in-process pipe"
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go prim.Serve(conn)
		}
	}()
	addr := ln.Addr().String()
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }, "tcp " + addr
}

func waitCaughtUp(h *stableheap.Heap, sb *repl.Standby) {
	check(sb.WaitCaughtUp(h.Internal().LogStableLSN(), 10*time.Second))
}

func lsnBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func check(err error) {
	if err != nil {
		log.Fatal("shrepl: ", err)
	}
}
