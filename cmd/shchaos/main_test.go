package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunSweepSmoke sweeps a few seeds and checks the exit code: the
// detectability contract means a healthy build never exits 1 here.
func TestRunSweepSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-seeds", "4", "-steps", "25", "-crashes", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("verdict matrix")) {
		t.Fatalf("matrix missing from output:\n%s", out.String())
	}
}

// TestRunJSONParses checks the -json report shape: per-seed plans and
// verdicts, the aggregate matrix, and a zero violation count.
func TestRunJSONParses(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-seeds", "3", "-steps", "25", "-crashes", "2", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var rep reportJSON
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Seeds) != 3 {
		t.Fatalf("want 3 seeds, got %d", len(rep.Seeds))
	}
	if rep.Violations != 0 {
		t.Fatalf("violations in smoke sweep: %v", rep.Failures)
	}
	for _, s := range rep.Seeds {
		if s.Plan == "" || len(s.Verdicts) == 0 {
			t.Fatalf("seed %d: empty plan or verdicts: %+v", s.Seed, s)
		}
	}
}

// TestRunSeedReplayIdentical is the -seed reproducibility contract at the
// CLI layer: two invocations with the same seed produce byte-identical
// output (satellite: deterministic replay).
func TestRunSeedReplayIdentical(t *testing.T) {
	runOnce := func() []byte {
		var out, errOut bytes.Buffer
		if code := run([]string{"-seed", "6", "-steps", "30", "-crashes", "3", "-json"}, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errOut.String())
		}
		return out.Bytes()
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different output:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestRunBadUsage: unknown flags and stray arguments exit 2.
func TestRunBadUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: want exit 2, got %d", code)
	}
	if code := run([]string{"extra"}, &out, &errOut); code != 2 {
		t.Fatalf("stray arg: want exit 2, got %d", code)
	}
}

// TestRunConcurrentScenario smokes -scenario concurrent: mutator bursts
// ride every round and the detectability contract still holds (exit 0).
// An unknown scenario name is a usage error.
func TestRunConcurrentScenario(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-scenario", "concurrent", "-seeds", "3", "-steps", "20", "-crashes", "2", "-mutators", "3"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("verdict matrix")) {
		t.Fatalf("matrix missing from output:\n%s", out.String())
	}
	if code := run([]string{"-scenario", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown scenario: want exit 2, got %d", code)
	}
}
