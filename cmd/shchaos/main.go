// Command shchaos is the chaos explorer: it sweeps PRNG seeds over
// deterministic fault plans (torn page writes, partial log forces,
// at-rest bit rot, transient I/O bursts — internal/faultfs), drives the
// model-checked crashtest workload under each plan, and classifies every
// recovery into the verdict matrix:
//
//	clean            recovered, audit passed
//	detected-online  a typed fault surfaced during live operation
//	detected         recovery refused the devices with a typed error
//	repaired         media recovery from the retained log rebuilt the heap
//	VIOLATION        recovery admitted corrupt state — must never happen
//
// Every failure message embeds the full fault plan; -seed replays one
// seed bit-identically, and -shrink greedily minimizes a failing plan to
// its smallest reproducer (see README "Debugging a chaos failure").
//
// Usage:
//
//	shchaos [-seeds n | -seed n] [-steps n] [-crashes n] [-flush f]
//	        [-midgc] [-repl] [-scenario default|concurrent|nursery|stable-conc]
//	        [-mutators n] [-shrink] [-json] [-blackbox file]
//
// Every seed runs with the flight recorder on; -blackbox writes one
// seed's recorder journal (the first violating seed's, else the last
// swept seed's) to a file that cmd/shtrace decodes into the pre-crash
// timeline.
//
// -scenario concurrent adds a concurrent mutator burst to every round:
// goroutines increment disjoint counters while the stable collector runs,
// each burst's history is checked for conflict serializability, and the
// post-crash audit pins every counter to its last acknowledged commit.
// -mutators overrides the burst width (default 4).
//
// -scenario nursery runs the heap with a small nursery and the
// mostly-concurrent volatile collector: every round commits chains of
// nursery-born objects, forces a minor collection with faults armed, and
// crashes with a concurrent scan in flight; the post-crash audit replays
// each acknowledged chain node by node.
//
// -scenario stable-conc runs the heap with the mostly-concurrent stable
// collector: every round commits chains of objects, promotes them to the
// stable area, flips it concurrently, paces the scan with faults armed and
// usually crashes with the scan still in flight at a quantum boundary;
// recovery resumes the scan and the audit replays each acknowledged chain.
//
// Exit status: 0 = no violations, 1 = violations found, 2 = bad usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"stableheap/internal/crashtest"
	"stableheap/internal/faultfs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// seedJSON is one seed's outcome, for -json.
type seedJSON struct {
	Seed     int64          `json:"seed"`
	Plan     string         `json:"plan"`
	Verdicts []string       `json:"verdicts"`
	Matrix   map[string]int `json:"matrix"`
	Retries  int            `json:"recovery_retries,omitempty"`
	Faults   faultfs.Stats  `json:"faults"`
	Failure  string         `json:"failure,omitempty"`
}

type reportJSON struct {
	Seeds      []seedJSON     `json:"seeds"`
	Matrix     map[string]int `json:"matrix"`
	Violations int            `json:"violations"`
	Failures   []string       `json:"failures,omitempty"`
	Shrunk     string         `json:"shrunk_plan,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 16, "sweep this many seeds starting at -from")
	from := fs.Int64("from", 0, "first seed of the sweep")
	oneSeed := fs.Int64("seed", -1, "replay exactly this seed (overrides -seeds)")
	steps := fs.Int("steps", 40, "workload operations per round")
	crashes := fs.Int("crashes", 4, "crash/recover rounds per seed")
	flush := fs.Float64("flush", 0.5, "fraction of resident pages flushed before each crash")
	midGC := fs.Bool("midgc", false, "leave an incremental stable collection in flight at crashes")
	repl := fs.Bool("repl", false, "end each seed with a primary/standby failover round")
	scenario := fs.String("scenario", "default", "workload shape: default (single-threaded driver), concurrent (adds goroutine mutator bursts), nursery (generational + mostly-concurrent volatile GC under faults), stable-conc (mostly-concurrent stable GC, crashes mid-scan) or 2pc (partitioned multi-heap, crashes at every two-phase-commit protocol state)")
	mutators := fs.Int("mutators", 0, "concurrent mutator goroutines per burst (0 = scenario default)")
	shrink := fs.Bool("shrink", false, "greedily minimize the fault plan of each violating seed")
	asJSON := fs.Bool("json", false, "print the verdict matrix and per-seed results as JSON")
	blackbox := fs.String("blackbox", "", "write a seed's flight-recorder journal to this file (first violating seed, else the last seed; decode with shtrace)")
	dir := fs.String("dir", "", "run every seed over real files under this directory (per-seed subdirs, removed after each seed)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "shchaos: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	sc := crashtest.Scenario{
		Steps: *steps, Crashes: *crashes, FlushFrac: *flush,
		MidGC: *midGC, Repl: *repl, Mutators: *mutators, Dir: *dir,
	}
	switch *scenario {
	case "default":
	case "concurrent":
		if sc.Mutators <= 0 {
			sc.Mutators = 4
		}
	case "nursery":
		sc.Nursery = true
	case "stable-conc":
		sc.StableConc = true
	case "2pc":
		sc.TwoPC = true
	default:
		fmt.Fprintf(stderr, "shchaos: unknown -scenario %q (want default, concurrent, nursery, stable-conc or 2pc)\n", *scenario)
		return 2
	}

	var rep crashtest.Report
	if *oneSeed >= 0 {
		rep = crashtest.Sweep(sc, *oneSeed, 1)
	} else {
		rep = crashtest.Sweep(sc, *from, *seeds)
	}

	if *blackbox != "" {
		var dump []byte
		for _, res := range rep.Results {
			if len(res.Dump) > 0 {
				dump = res.Dump
			}
			if res.Failed() {
				break // first violating seed's journal wins
			}
		}
		if err := os.WriteFile(*blackbox, dump, 0o644); err != nil {
			fmt.Fprintf(stderr, "shchaos: writing -blackbox: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "shchaos: wrote flight-recorder journal (%d bytes) to %s\n", len(dump), *blackbox)
	}

	// -shrink: for each violating seed, find the minimal plan that still
	// violates — the reproducer to debug with.
	var shrunk []string
	if *shrink {
		for _, res := range rep.Results {
			if !res.Failed() {
				continue
			}
			min := crashtest.ShrinkPlan(res.Plan, func(p faultfs.Plan) bool {
				return crashtest.RunSeedWithPlan(sc, p).Failed()
			})
			shrunk = append(shrunk, min.String())
		}
	}

	if *asJSON {
		out := reportJSON{
			Matrix:     rep.MatrixMap(),
			Violations: rep.Violations(),
			Failures:   rep.Failures,
		}
		for _, res := range rep.Results {
			verdicts := make([]string, len(res.Verdicts))
			for i, v := range res.Verdicts {
				verdicts[i] = v.String()
			}
			matrix := make(map[string]int)
			for v, c := range res.Matrix {
				if c > 0 {
					matrix[crashtest.Verdict(v).String()] = c
				}
			}
			out.Seeds = append(out.Seeds, seedJSON{
				Seed: res.Seed, Plan: res.Plan.String(), Verdicts: verdicts,
				Matrix: matrix, Retries: res.Retries, Faults: res.Faults,
				Failure: res.Failure,
			})
		}
		if len(shrunk) > 0 {
			out.Shrunk = shrunk[0]
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "shchaos: %v\n", err)
			return 1
		}
	} else {
		for _, res := range rep.Results {
			fmt.Fprintf(stdout, "seed %d [%s]: %v", res.Seed, res.Plan, res.Verdicts)
			if res.Retries > 0 {
				fmt.Fprintf(stdout, " (%d recovery retries)", res.Retries)
			}
			fmt.Fprintln(stdout)
		}
		fmt.Fprintf(stdout, "\nverdict matrix: %v\n", rep.MatrixMap())
		for _, f := range rep.Failures {
			fmt.Fprintf(stdout, "%s\n", f)
		}
		for _, m := range shrunk {
			fmt.Fprintf(stdout, "minimal reproducer: %s\n", m)
		}
	}

	if rep.Violations() > 0 {
		fmt.Fprintf(stderr, "shchaos: %d seed(s) violated the detectability contract\n", rep.Violations())
		return 1
	}
	return 0
}
