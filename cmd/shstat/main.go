// Command shstat exercises a stable heap and reports its live metrics: it
// runs a bank-transfer workload (with an in-flight incremental collection),
// crashes and recovers mid-run so recovery phase times are populated, runs
// a second burst against the recovered heap — with a warm log-shipping
// standby attached so the replication counters, apply latencies and lag
// gauges populate too — and then prints the unified metrics snapshot —
// every counter plus p50/p90/p99/max for every latency histogram. The
// volatile area runs with the nursery generation and the mostly-concurrent
// collector enabled, and the human summary closes with the derived
// generational/concurrent story: promotion rate, write-barrier hit counts,
// and the pause percentiles of each collection flavor.
//
// Usage:
//
//	shstat                          # human-readable summary
//	shstat -json                    # the Metrics snapshot as JSON
//	shstat -prom                    # Prometheus text exposition
//	shstat -trace trace.json        # also write a Chrome trace (about://tracing)
//	shstat -serve localhost:8077    # keep serving /metrics, /metrics.json, /trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"stableheap"
	"stableheap/internal/repl"
	"stableheap/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags in, exit code out (0 = success,
// 1 = failure, 2 = bad usage).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ops := fs.Int("ops", 2000, "transfer transactions per burst (two bursts run)")
	accounts := fs.Int("accounts", 128, "bank accounts")
	asJSON := fs.Bool("json", false, "print the metrics snapshot as JSON")
	asProm := fs.Bool("prom", false, "print Prometheus text exposition")
	tracePath := fs.String("trace", "", "write Chrome trace_event JSON to this file")
	serveAddr := fs.String("serve", "", "serve /metrics, /metrics.json and /trace on this address and block")
	dir := fs.String("dir", "", "back the heap with real files in a fresh subdirectory of this path (filestore_ metrics populate)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := body(*ops, *accounts, *asJSON, *asProm, *tracePath, *serveAddr, *dir, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "shstat: %v\n", err)
		return 1
	}
	return 0
}

func body(ops, accounts int, asJSON, asProm bool, tracePath, serveAddr, dir string, stdout, stderr io.Writer) error {
	cfg := stableheap.DefaultConfig()
	cfg.StableWords = 64 * 1024
	cfg.VolatileWords = 16 * 1024
	cfg.GroupCommitWindow = 200 * time.Microsecond
	if dir != "" {
		heapDir, err := os.MkdirTemp(dir, "shstat-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(heapDir)
		cfg.Dir = heapDir
	}
	// Run the volatile area the way a latency-sensitive deployment would:
	// nursery on (the default) and full collections mostly-concurrent, so
	// the vgc_nursery_* and vgc_conc_* metrics populate and the summary can
	// show the generational/concurrent pause story.
	cfg.ConcurrentVGC = true
	// Tracing is the one opt-in: turn it on whenever its output is wanted.
	cfg.Trace = tracePath != "" || serveAddr != ""

	rng := rand.New(rand.NewSource(42))
	h := stableheap.Open(cfg)
	fanout := 1
	for fanout*fanout < accounts {
		fanout++
	}
	bank, err := workload.NewBank(h, 0, accounts, fanout, 1000)
	if err != nil {
		return err
	}

	// Burst one, with an incremental stable collection in flight so flip,
	// scan-step and trap histograms fill.
	h.CollectVolatile()
	h.StartStableCollection()
	if _, err := bank.RunMix(rng, ops, 50); err != nil {
		return err
	}
	for h.StepStable() {
	}

	// Crash and recover: populates the recovery phase histograms.
	disk, logDev := h.Crash()
	h, err = stableheap.Recover(cfg, disk, logDev)
	if err != nil {
		return err
	}
	bank.Reattach(h)

	// Attach a warm standby to the recovered heap so burst two streams
	// over the log-shipping path and the repl_* counters, apply-latency
	// histograms and lag gauge populate alongside the heap's own metrics.
	prim := repl.NewPrimary(h.Internal(), repl.PrimaryConfig{})
	sbDisk, sbLog := h.Internal().BaseBackup()
	sb, err := repl.NewStandby(repl.StandbyConfig{Name: "shstat-standby", Heap: cfg}, sbDisk, sbLog)
	if err != nil {
		return err
	}
	resumeLSN := sb.AppliedLSN()
	server, client := net.Pipe()
	go prim.Serve(server)
	go sb.RunConn(client)

	// Burst two against the recovered heap, again with a collection in
	// flight (metrics live with the heap instance, so the reported GC
	// histograms must come from post-recovery activity).
	h.CollectVolatile()
	h.StartStableCollection()
	if _, err := bank.RunMix(rng, ops, 50); err != nil {
		return err
	}
	for h.StepStable() {
	}
	// The transfer mix never allocates, so it leaves the generational
	// machinery idle; a volatile session-cache churn phase fills the
	// nursery (minor collections, promotion) and overlaps a
	// mostly-concurrent full collection with committing mutators (SATB
	// grays, read-barrier transports).
	if err := volatileChurn(h, 1500); err != nil {
		return err
	}
	total, err := bank.Total()
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "workload: %d accounts, 2×%d transfer txs, crash+recover in between; invariant total=%d\n",
		accounts, ops, total)

	// Drain the standby and take one consistent snapshot read before
	// folding its metrics in.
	h.Internal().Log().ForceAll()
	if err := sb.WaitCaughtUp(h.Internal().LogStableLSN(), 10*time.Second); err != nil {
		return err
	}
	_, at, err := sb.ReadSnapshot()
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "replication: standby resumed from LSN %d, snapshot read at LSN %d, lag %d bytes\n",
		resumeLSN, at, sb.LagBytes())
	sb.Close()

	m := h.Metrics()
	m.Merge(prim.Metrics())
	m.Merge(sb.Metrics())
	switch {
	case asJSON:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m); err != nil {
			return err
		}
	case asProm:
		if err := m.WritePrometheus(stdout); err != nil {
			return err
		}
	default:
		printSummary(stdout, m)
	}

	if tracePath != "" {
		if err := os.WriteFile(tracePath, h.TraceJSON(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "trace written to %s (open in about://tracing or ui.perfetto.dev)\n", tracePath)
	}
	if serveAddr != "" {
		srv, err := h.ServeMetrics(serveAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "serving http://%s/ (metrics, metrics.json, trace); ctrl-c to stop\n", srv.Addr())
		select {}
	}
	return nil
}

// volatileChurn runs a session-cache workload against the volatile area:
// every op commits a fresh small object into a rolling volatile root
// (killing the previous one — classic fast-dying churn), and every fourth
// op parks a short chain in a ring whose entries outlive a minor
// collection, so survivors promote into the aged space and the
// generational write barrier fires on each park. Halfway through, a full
// collection starts; under ConcurrentVGC its copying scan overlaps the
// remaining commits (each commit assists by one quantum), firing the SATB
// deletion barrier and the read-barrier transport path.
func volatileChurn(h *stableheap.Heap, ops int) error {
	const ringSlots = 32
	tx := h.Begin()
	ring, err := tx.Alloc(200, ringSlots, 0)
	if err != nil {
		return err
	}
	if err := tx.SetVolRoot(30, ring); err != nil {
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	for op := 0; op < ops; op++ {
		if op == ops/2 {
			if _, err := h.CollectVolatile(); err != nil {
				return err
			}
		}
		tx := h.Begin()
		n, err := tx.Alloc(201, 1, 9)
		if err != nil {
			return err
		}
		if err := tx.SetData(n, 0, uint64(op)); err != nil {
			return err
		}
		if op%4 == 0 {
			var head *stableheap.Ref
			for k := 0; k < 3; k++ {
				c, err := tx.Alloc(202, 1, 1)
				if err != nil {
					return err
				}
				if err := tx.SetPtr(c, 0, head); err != nil {
					return err
				}
				head = c
			}
			ring, err := tx.VolRoot(30)
			if err != nil {
				return err
			}
			if err := tx.SetPtr(ring, (op/4)%ringSlots, head); err != nil {
				return err
			}
		}
		if err := tx.SetVolRoot(31, n); err != nil {
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// printSummary renders the snapshot for humans: counters alphabetically,
// then every histogram as count / p50 / p90 / p99 / max.
func printSummary(w io.Writer, m stableheap.Metrics) {
	fmt.Fprintln(w, "counters:")
	names := make([]string, 0, len(m.Counters))
	for n := range m.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %-34s %d\n", n, m.Counters[n])
	}
	fmt.Fprintln(w, "\nlatency histograms (count / p50 / p90 / p99 / max):")
	names = names[:0]
	for n := range m.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := m.Histograms[n]
		if h.Count == 0 {
			continue
		}
		if strings.HasSuffix(n, "_ns") {
			fmt.Fprintf(w, "  %-34s %6d  %10v %10v %10v %10v\n", n, h.Count,
				h.QuantileDur(0.5), h.QuantileDur(0.9), h.QuantileDur(0.99), h.MaxDur())
		} else {
			fmt.Fprintf(w, "  %-34s %6d  %10d %10d %10d %10d\n", n, h.Count,
				h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max)
		}
	}
	printVGCSummary(w, m)
}

// printVGCSummary derives the generational/concurrent volatile-GC story
// from the raw counters — the questions an operator tuning NurseryBytes or
// weighing ConcurrentVGC actually asks: what fraction of nursery
// allocation survived to promotion, how often each write barrier fired,
// and what the concurrent collector's stop-the-world slices (the flip and
// each scan quantum) cost next to a full stop-the-world pause.
func printVGCSummary(w io.Writer, m stableheap.Metrics) {
	alloc := m.Counters["vgc_nursery_alloc_words_total"]
	if alloc == 0 {
		return
	}
	fmt.Fprintln(w, "\nvolatile gc (generational + mostly-concurrent):")
	fmt.Fprintf(w, "  collections: %d minor, %d full (%d concurrent)\n",
		m.Counters["vgc_nursery_minor_total"],
		m.Counters["vgc_collections_total"],
		m.Counters["vgc_conc_collections_total"])
	promoted := m.Counters["vgc_nursery_promoted_words_total"]
	fmt.Fprintf(w, "  promotion rate: %.1f%% (%d of %d nursery-allocated words survived a minor collection)\n",
		100*float64(promoted)/float64(alloc), promoted, alloc)
	fmt.Fprintf(w, "  barrier hits: %d generational (aged slot -> nursery), %d SATB gray, %d read-barrier transports\n",
		m.Counters["vgc_nursery_barrier_hits_total"],
		m.Counters["vgc_conc_satb_gray_total"],
		m.Counters["vgc_conc_transports_total"])
	for _, p := range []struct{ label, hist string }{
		{"full-collection pause", "vgc_pause_ns"},
		{"minor pause", "vgc_minor_pause_ns"},
		{"concurrent flip pause", "vgc_conc_flip_pause_ns"},
		{"concurrent scan quantum", "vgc_conc_quantum_ns"},
	} {
		h, ok := m.Histograms[p.hist]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-26s p50 %v / p99 %v / max %v over %d\n",
			p.label+":", h.QuantileDur(0.5), h.QuantileDur(0.99), h.MaxDur(), h.Count)
	}
}
