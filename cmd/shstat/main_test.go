package main

import (
	"bytes"
	"strings"
	"testing"

	"encoding/json"

	"stableheap"
)

// TestRunSummary runs the full workload (two bursts, crash+recover,
// standby attach) at a reduced size and checks the human summary.
func TestRunSummary(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-ops", "150", "-accounts", "16"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"counters:", "latency histograms"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "invariant total=") {
		t.Fatalf("workload invariant line missing from stderr:\n%s", errOut.String())
	}
}

// TestRunJSON checks the -json snapshot parses and carries both heap and
// replication metrics.
func TestRunJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-ops", "150", "-accounts", "16", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var m stableheap.Metrics
	if err := json.Unmarshal(out.Bytes(), &m); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if m.Counters["tx_committed_total"] == 0 {
		t.Fatalf("no commits recorded: %v", m.Counters)
	}
	if m.Counters["repl_shipped_bytes_total"] == 0 {
		t.Fatalf("replication counters absent: %v", m.Counters)
	}
}

// TestRunBadFlag: unknown flags must exit 2.
func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("want exit 2, got %d", code)
	}
}
