// Command shrecover is the crash-and-recover demonstration driver: it runs
// a model-checked random workload, crashes the heap at a chosen (or
// random) point — optionally in the middle of a collection and with an
// arbitrary fraction of dirty pages flushed — recovers, verifies every
// committed value against the model, and reports what recovery did.
//
// Usage:
//
//	shrecover [-seed n] [-steps n] [-flush f] [-midgc] [-rounds n]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"stableheap"
	"stableheap/internal/core"
	"stableheap/internal/crashtest"
)

func main() {
	seed := flag.Int64("seed", 1, "workload seed")
	steps := flag.Int("steps", 150, "workload operations before each crash")
	flush := flag.Float64("flush", 0.5, "fraction of dirty pages flushed before the crash")
	midGC := flag.Bool("midgc", false, "crash in the middle of a stable collection")
	rounds := flag.Int("rounds", 3, "crash/recover rounds")
	workers := flag.Int("workers", 0, "redo workers (0 = min(GOMAXPROCS, 8), 1 = sequential)")
	flag.Parse()

	cfg := core.Config{
		PageSize:        1024,
		StableWords:     32 * 1024,
		VolatileWords:   8 * 1024,
		Divided:         true,
		Barrier:         stableheap.Ellis,
		Incremental:     true,
		RecoveryWorkers: *workers,
	}
	d := crashtest.New(cfg, *seed)

	for round := 1; round <= *rounds; round++ {
		for i := 0; i < *steps; i++ {
			if err := d.Step(); err != nil {
				log.Fatalf("round %d step %d: %v", round, i, err)
			}
		}
		if *midGC {
			d.Heap().StartStableCollection()
			d.Heap().StepStable()
		}
		gcActive := d.Heap().StableCollector().Active()
		start := time.Now()
		if err := d.CrashAndRecover(*flush, true); err != nil {
			log.Fatalf("round %d: VIOLATION: %v", round, err)
		}
		res := d.Heap().LastRecovery()
		fmt.Printf("round %d: crash (gc-active=%v, %.0f%% flushed) → recovered in %s\n",
			round, gcActive, *flush*100, time.Since(start).Round(time.Microsecond))
		fmt.Printf("  redo from LSN %d: %d records scanned, %d applied; %d losers rolled back\n",
			res.RedoStart, res.RedoScanned, res.RedoApplied, len(res.Losers))
		st := res.Stats
		fmt.Printf("  phases: analysis %s, redo %s, undo %s\n",
			st.Analysis.Round(time.Microsecond), st.Redo.Round(time.Microsecond),
			st.Undo.Round(time.Microsecond))
		if st.RedoWorkers > 1 {
			fmt.Printf("  parallel redo: %d workers, %d barriers, shard skew %.2f\n",
				st.RedoWorkers, st.Barriers, st.Skew())
		} else {
			fmt.Printf("  sequential redo (1 worker)\n")
		}
		fmt.Printf("  model verified twice (primary + independent twin recovery)\n")
	}
	s := d.Stats()
	fmt.Printf("\ntotal: %d operations, %d commits, %d aborts, %d crashes, 0 violations\n",
		s.Steps, s.Commits, s.Aborts, s.Crashes)
}
