// Command shrecover is the crash-and-recover demonstration driver: it runs
// a model-checked random workload, crashes the heap at a chosen (or
// random) point — optionally in the middle of a collection and with an
// arbitrary fraction of dirty pages flushed — recovers, verifies every
// committed value against the model, and reports what recovery did.
//
// With -repl each round fails over to a warm log-shipping standby instead
// of recovering in place: a standby is bootstrapped from a base backup,
// streams the log while the workload runs, and is promoted after the
// primary crashes; the report then shows the resume LSN and promotion
// stats instead of in-place recovery phases.
//
// Usage:
//
//	shrecover [-seed n] [-steps n] [-flush f] [-midgc] [-rounds n] [-repl] [-json] [-dir path]
//
// With -dir the heap runs over real files in a fresh subdirectory of
// path (removed on exit): the same crash/recover/verify loop, but every
// page write, log force and master update goes through the filestore.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"stableheap"
	"stableheap/internal/core"
	"stableheap/internal/crashtest"
)

// roundResult is one crash/recover (or crash/promote) round, for -json.
type roundResult struct {
	Round      int    `json:"round"`
	Replicated bool   `json:"replicated"`
	GCActive   bool   `json:"gc_active"`
	ElapsedNs  int64  `json:"elapsed_ns"`
	ResumeLSN  uint64 `json:"resume_lsn"` // where repeating history began
	Scanned    int    `json:"redo_scanned"`
	Applied    int    `json:"redo_applied,omitempty"`
	Losers     int    `json:"losers"`
	InDoubt    int    `json:"in_doubt"`
	GCResumed  bool   `json:"gc_resumed"`
	AppliedLSN uint64 `json:"applied_lsn,omitempty"` // replicated rounds: shipped prefix at promotion
	Workers    int    `json:"redo_workers,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags in, exit code out (0 = verified,
// 1 = violation or internal failure, 2 = bad usage).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shrecover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "workload seed")
	steps := fs.Int("steps", 150, "workload operations before each crash")
	flush := fs.Float64("flush", 0.5, "fraction of dirty pages flushed before the crash")
	midGC := fs.Bool("midgc", false, "crash in the middle of a stable collection")
	rounds := fs.Int("rounds", 3, "crash/recover rounds")
	workers := fs.Int("workers", 0, "redo workers (0 = min(GOMAXPROCS, 8), 1 = sequential)")
	replicate := fs.Bool("repl", false, "fail over to a warm log-shipping standby instead of recovering in place")
	asJSON := fs.Bool("json", false, "print per-round results and totals as JSON")
	dir := fs.String("dir", "", "back the heap with real files in a fresh subdirectory of this path")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	say := func(format string, args ...any) {
		if !*asJSON {
			fmt.Fprintf(stdout, format+"\n", args...)
		}
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "shrecover: "+format+"\n", args...)
		return 1
	}

	cfg := core.Config{
		PageSize:        1024,
		StableWords:     32 * 1024,
		VolatileWords:   8 * 1024,
		Divided:         true,
		Barrier:         stableheap.Ellis,
		Incremental:     true,
		RecoveryWorkers: *workers,
	}
	if *dir != "" {
		heapDir, err := os.MkdirTemp(*dir, "shrecover-")
		if err != nil {
			return fail("%v", err)
		}
		defer os.RemoveAll(heapDir)
		cfg.Dir = heapDir
		say("heap on real files at %s", heapDir)
	}
	d := crashtest.New(cfg, *seed)

	results := make([]roundResult, 0, *rounds)
	for round := 1; round <= *rounds; round++ {
		if *replicate {
			start := time.Now()
			pstats, err := d.ReplicatedCrashAndPromote(*steps, *midGC)
			if err != nil {
				return fail("round %d: VIOLATION: %v", round, err)
			}
			results = append(results, roundResult{
				Round: round, Replicated: true, GCActive: pstats.GCResumed,
				ElapsedNs: time.Since(start).Nanoseconds(),
				ResumeLSN: uint64(pstats.RedoStart), Scanned: pstats.Scanned,
				Losers: pstats.Losers, InDoubt: pstats.InDoubt,
				GCResumed: pstats.GCResumed, AppliedLSN: uint64(pstats.AppliedLSN),
			})
			say("round %d: replicated failover (midgc=%v) → promoted in %s",
				round, *midGC, pstats.Duration.Round(time.Microsecond))
			say("  standby applied LSN %d; redo from LSN %d: %d records scanned",
				pstats.AppliedLSN, pstats.RedoStart, pstats.Scanned)
			say("  %d losers rolled back, %d in-doubt resolved, gc-resumed=%v",
				pstats.Losers, pstats.InDoubt, pstats.GCResumed)
			say("  model verified against the promoted heap")
			continue
		}

		for i := 0; i < *steps; i++ {
			if err := d.Step(); err != nil {
				return fail("round %d step %d: %v", round, i, err)
			}
		}
		if *midGC {
			d.Heap().StartStableCollection()
			d.Heap().StepStable()
		}
		gcActive := d.Heap().StableCollector().Active()
		start := time.Now()
		if err := d.CrashAndRecover(*flush, true); err != nil {
			return fail("round %d: VIOLATION: %v", round, err)
		}
		res := d.Heap().LastRecovery()
		st := res.Stats
		results = append(results, roundResult{
			Round: round, GCActive: gcActive,
			ElapsedNs: time.Since(start).Nanoseconds(),
			ResumeLSN: uint64(res.RedoStart), Scanned: res.RedoScanned,
			Applied: res.RedoApplied, Losers: len(res.Losers),
			GCResumed: d.Heap().StableCollector().Active(),
			Workers:   st.RedoWorkers,
		})
		say("round %d: crash (gc-active=%v, %.0f%% flushed) → recovered in %s",
			round, gcActive, *flush*100, time.Since(start).Round(time.Microsecond))
		say("  redo from LSN %d: %d records scanned, %d applied; %d losers rolled back",
			res.RedoStart, res.RedoScanned, res.RedoApplied, len(res.Losers))
		say("  phases: analysis %s, redo %s, undo %s",
			st.Analysis.Round(time.Microsecond), st.Redo.Round(time.Microsecond),
			st.Undo.Round(time.Microsecond))
		if st.RedoWorkers > 1 {
			say("  parallel redo: %d workers, %d barriers, shard skew %.2f",
				st.RedoWorkers, st.Barriers, st.Skew())
		} else {
			say("  sequential redo (1 worker)")
		}
		say("  model verified twice (primary + independent twin recovery)")
	}

	s := d.Stats()
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Rounds []roundResult   `json:"rounds"`
			Totals crashtest.Stats `json:"totals"`
		}{results, s}); err != nil {
			return fail("%v", err)
		}
		return 0
	}
	fmt.Fprintf(stdout, "\ntotal: %d operations, %d commits, %d aborts, %d crashes, 0 violations\n",
		s.Steps, s.Commits, s.Aborts, s.Crashes)
	return 0
}
