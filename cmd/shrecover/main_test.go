package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"stableheap/internal/crashtest"
)

// TestRunSmoke drives the tool through its package API with a small
// workload and checks the exit code and human-readable output.
func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-seed", "3", "-steps", "40", "-rounds", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Fatalf("summary line missing from output:\n%s", out.String())
	}
}

// TestRunJSON checks that -json emits a parseable report with the right
// number of rounds and nonzero totals.
func TestRunJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-seed", "1", "-steps", "30", "-rounds", "2", "-midgc", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var rep struct {
		Rounds []json.RawMessage `json:"rounds"`
		Totals crashtest.Stats   `json:"totals"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("want 2 rounds in JSON, got %d", len(rep.Rounds))
	}
	if rep.Totals.Commits == 0 || rep.Totals.Crashes != 2 {
		t.Fatalf("implausible totals: %+v", rep.Totals)
	}
}

// TestRunReplicated exercises the failover path end to end.
func TestRunReplicated(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-seed", "2", "-steps", "30", "-rounds", "1", "-repl"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "promoted") {
		t.Fatalf("replicated round not reported:\n%s", out.String())
	}
}

// TestRunBadFlag: unknown flags must exit 2 (usage), not 1 (violation).
func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: want exit 2, got %d", code)
	}
}
