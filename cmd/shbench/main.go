// Command shbench regenerates the reproduction's experiment tables and
// figures (DESIGN.md §5 / EXPERIMENTS.md): one sub-command per experiment,
// or "all" for the full suite.
//
// Usage:
//
//	shbench [-dir path] all
//	shbench e4 e7
//	shbench list
//	shbench json [path]    # machine-readable suite (default BENCH_9.json)
//
// -dir sets the parent directory for the file-backed experiment's heap
// directories (E21); default is the OS temp dir. Point it at a real disk
// to measure spinning-rust or NVMe fsyncs instead of tmpfs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stableheap/internal/bench"
)

func main() {
	dir := flag.String("dir", "", "parent directory for file-backed experiment heaps (default: OS temp dir)")
	flag.Parse()
	bench.FileDir = *dir
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		list()
		return
	case "all":
		start := time.Now()
		for _, f := range bench.All() {
			fmt.Println(f().Render())
		}
		fmt.Printf("suite completed in %s\n", time.Since(start).Round(time.Millisecond))
		return
	case "json":
		path := "BENCH_9.json"
		if len(args) > 1 {
			path = args[1]
		}
		start := time.Now()
		if err := bench.WriteJSON(path); err != nil {
			fmt.Fprintf(os.Stderr, "shbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s in %s\n", path, time.Since(start).Round(time.Millisecond))
		return
	case "-h", "--help", "help":
		usage()
		return
	}
	for _, id := range args {
		f, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "shbench: unknown experiment %q (try 'shbench list')\n", id)
			os.Exit(2)
		}
		fmt.Println(f().Render())
	}
}

func list() {
	fmt.Println(`experiments (id — what it reproduces):
  e1   micro: cost of low-level recoverable actions
  e2   micro: collector step costs (flip, copy, scan, trap, GCEnd)
  e3   figure: GC pause vs live-set size, stop-the-world vs incremental
  e4   figure: recovery time vs heap size (the headline claim)
  e5   figure: recovery time vs checkpoint interval
  e6   table: log volume by origin vs live fraction
  e7   figure: recovery after a crash during a collection, vs heap size
  e8   table: stability tracking cost vs newly stable closure size
  e9   table: heap-division benefit on churny workloads
  e10  figure: read-barrier cost and trap skew (Ellis vs Baker)
  e11  macro: transaction throughput across collector modes
  e12  correctness: crash-matrix soundness sweep
  e13  extension: group commit (forces per commit, throughput)
  e14  ablation: content-free vs content-carrying copy records
  e15  extension: log space bounded by truncation
  e16  extension: log-shipping failover time vs replication lag
  e18  extension: multi-core transaction-path scaling
  e19  extension: nursery + mostly-concurrent volatile GC pauses
  e20  extension: flight recorder + watchdog overhead on the hot path
  e21  extension: file-backed heaps beyond the durable page cache
  e22  extension: mostly-concurrent stable GC stalls vs stop-the-world
  e23  extension: partitioned multi-heap scaling and the cross-partition 2PC tax`)
}

func usage() {
	fmt.Println("usage: shbench all | list | json [path] | <experiment id>...")
}
