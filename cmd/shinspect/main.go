// Command shinspect makes the write-ahead log's anatomy visible: it runs a
// small scripted scenario — transactions, an abort, stability tracking, a
// volatile collection's moves, an incremental stable collection, a
// checkpoint — and dumps every log record with its role, so the record
// taxonomy of the paper (update/CLR, base/complete, V2SCopy/SFix,
// flip/copy/scan/GCEnd, checkpoint) can be read off a real run.
//
// Usage: shinspect [-n maxRecords] [-json] [-dir path]
//
// With -dir the heap lives in real files under path: a fresh directory is
// formatted and runs the scripted scenario before dumping; a directory
// holding an earlier shinspect heap is recovered and dumped as-is — so
// running shinspect -dir X twice is a durability round trip (create →
// populate → close → reopen → audit) you can watch from the outside.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"stableheap"
	"stableheap/internal/storage/filestore"
	"stableheap/internal/wal"
	"stableheap/internal/word"
)

func main() {
	maxRecords := flag.Int("n", 200, "maximum records to print")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON, one object per log record")
	dir := flag.String("dir", "", "back the heap with real files under this directory")
	flag.Parse()

	cfg := stableheap.DefaultConfig()
	cfg.StableWords = 4 * 1024
	cfg.VolatileWords = 2 * 1024
	cfg.Dir = *dir

	if *dir != "" && filestore.IsFormatted(*dir) {
		// Round trip: recover the earlier run's heap and audit its root
		// before dumping what survived on disk.
		h, err := stableheap.RecoverDir(cfg)
		check(err)
		tx := h.Begin()
		ra, err := tx.Root(0)
		check(err)
		if ra == nil {
			check(fmt.Errorf("reopened heap at %s has no root object", *dir))
		}
		v, err := tx.Data(ra, 0)
		check(err)
		check(tx.Abort())
		if !*asJSON {
			fmt.Printf("reopened heap at %s: root slot 0 data %d (audit ok)\n\n", *dir, v)
		}
		dump(h, *maxRecords, *asJSON)
		h.Close()
		return
	}

	h := stableheap.Open(cfg)

	// Scripted scenario.
	tx := h.Begin()
	a, err := tx.Alloc(1, 1, 1)
	check(err)
	b, err := tx.Alloc(1, 0, 1)
	check(err)
	check(tx.SetData(a, 0, 111))
	check(tx.SetData(b, 0, 222))
	check(tx.SetPtr(a, 0, b))
	check(tx.SetRoot(0, a)) // a and b become stable at commit
	check(tx.Commit())

	tx2 := h.Begin()
	ra, err := tx2.Root(0)
	check(err)
	check(tx2.SetData(ra, 0, 999))
	check(tx2.Abort()) // CLRs

	if _, err := h.CollectVolatile(); err != nil { // V2SCopy + SFix + VFlip
		log.Fatal(err)
	}
	h.StartStableCollection() // flip + copy/scan records
	for h.StepStable() {
	}
	h.Checkpoint()

	dump(h, *maxRecords, *asJSON)
	if *dir != "" {
		h.Close() // persist: a second shinspect -dir run reopens this heap
		if !*asJSON {
			fmt.Printf("\nheap persisted at %s; run again with -dir to reopen and audit\n", *dir)
		}
	}
}

// dump prints the retained log records (from the truncation point, which
// is 1 on a fresh heap) and device totals.
func dump(h *stableheap.Heap, maxRecords int, asJSON bool) {
	dev := h.Internal().Log().Device()
	from := dev.TruncLSN()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		n := 0
		h.Internal().Log().Scan(from, false, func(lsn word.LSN, r wal.Record) bool {
			n++
			if n > maxRecords {
				return false
			}
			if err := enc.Encode(jsonRecord{LSN: uint64(lsn), Type: typeName(r), Record: r}); err != nil {
				log.Fatal(err)
			}
			return true
		})
		return
	}

	fmt.Println("log records (LSN order):")
	n := 0
	h.Internal().Log().Scan(from, false, func(lsn word.LSN, r wal.Record) bool {
		n++
		if n > maxRecords {
			fmt.Println("  … (truncated; use -n to see more)")
			return false
		}
		fmt.Printf("  %6d  %s\n", lsn, describe(r))
		return true
	})
	fmt.Printf("\n%d records, %d bytes appended, %d bytes stable, %d synchronous forces\n",
		dev.Stats().Appends, dev.Stats().BytesAppended, dev.Stats().BytesStable, dev.Stats().Forces)
}

// jsonRecord is the machine-readable form: one object per line (NDJSON),
// so the dump streams into jq or a script without loading the whole log.
type jsonRecord struct {
	LSN    uint64     `json:"lsn"`
	Type   string     `json:"type"`
	Record wal.Record `json:"record"`
}

// typeName derives a stable lowercase record-type name from the Go type
// (wal.CommitRec → "commit").
func typeName(r wal.Record) string {
	name := fmt.Sprintf("%T", r)
	name = strings.TrimPrefix(name, "wal.")
	name = strings.TrimSuffix(name, "Rec")
	return strings.ToLower(name)
}

func describe(r wal.Record) string {
	switch rec := r.(type) {
	case wal.BeginRec:
		return fmt.Sprintf("begin        tx=%d", rec.TxID)
	case wal.UpdateRec:
		kind := "data"
		if rec.Flags&wal.UFPtrSlot != 0 {
			kind = "ptr"
		}
		return fmt.Sprintf("update       tx=%d addr=%v %s redo=%x undo=%x", rec.TxID, rec.Addr, kind, rec.Redo, rec.Undo)
	case wal.LogicalRec:
		return fmt.Sprintf("logical      tx=%d addr=%v delta=%+d (no before-image)", rec.TxID, rec.Addr, int64(rec.Delta))
	case wal.CLRRec:
		return fmt.Sprintf("CLR          tx=%d addr=%v restores=%x undoNext=%d", rec.TxID, rec.Addr, rec.Redo, rec.UndoNext)
	case wal.AllocRec:
		return fmt.Sprintf("alloc        tx=%d addr=%v size=%dw", rec.TxID, rec.Addr, rec.SizeWords)
	case wal.PrepareRec:
		return fmt.Sprintf("PREPARE      tx=%d (forced; in-doubt across crashes)", rec.TxID)
	case wal.CommitRec:
		return fmt.Sprintf("COMMIT       tx=%d (log forced through here)", rec.TxID)
	case wal.AbortRec:
		return fmt.Sprintf("abort        tx=%d (CLRs follow)", rec.TxID)
	case wal.EndRec:
		return fmt.Sprintf("end          tx=%d", rec.TxID)
	case wal.BaseRec:
		return fmt.Sprintf("base         tx=%d addr=%v %dB initial value (newly stable)", rec.TxID, rec.Addr, len(rec.Object))
	case wal.CompleteRec:
		return fmt.Sprintf("complete     tx=%d batch of %d newly stable objects", rec.TxID, rec.Count)
	case wal.V2SCopyRec:
		return fmt.Sprintf("v2scopy      %v → %v (%dB, volatile→stable move)", rec.From, rec.To, len(rec.Object))
	case wal.SFixRec:
		return fmt.Sprintf("sfix         page=%d %d stable slots rewired (S4VScan)", rec.Page, len(rec.Fixes))
	case wal.VFlipRec:
		return fmt.Sprintf("vflip        volatile collection %d moved %d objects", rec.Epoch, rec.Moved)
	case wal.FlipRec:
		return fmt.Sprintf("FLIP         epoch=%d from=[%v,%v) to=[%v,%v) root %v→%v", rec.Epoch, rec.FromLo, rec.FromHi, rec.ToLo, rec.ToHi, rec.RootObjFrom, rec.RootObjTo)
	case wal.CopyRec:
		return fmt.Sprintf("copy         %v → %v %dw desc=%#x (copy step)", rec.From, rec.To, rec.SizeWords, rec.Descriptor)
	case wal.ScanRec:
		src := "trap"
		if !rec.Full {
			src = "sweep"
		} else if rec.ScanPtr != word.NilAddr {
			src = "sweep-full"
		}
		return fmt.Sprintf("scan         page=%d %d slots fixed (%s)", rec.Page, len(rec.Fixes), src)
	case wal.GCEndRec:
		return fmt.Sprintf("GCEND        epoch=%d (to-space written back, from-space freed)", rec.Epoch)
	case wal.PageFetchRec:
		return fmt.Sprintf("page-fetch   page=%d", rec.Page)
	case wal.EndWriteRec:
		return fmt.Sprintf("end-write    page=%d pageLSN=%d", rec.Page, rec.PageLSN)
	case wal.CheckpointRec:
		return fmt.Sprintf("CHECKPOINT   %d dirty pages, %d active txs, GC active=%v, %d LS, %d SRem",
			len(rec.Dirty), len(rec.Txs), rec.GC.Active, len(rec.LS), len(rec.SRem))
	default:
		return fmt.Sprintf("%v", r.Type())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "shinspect:", err)
		os.Exit(1)
	}
}
