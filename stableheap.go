// Package stableheap is a Go implementation of the stable heap of
// Kolodner & Weihl, "Atomic Incremental Garbage Collection and Recovery
// for a Large Stable Heap" (SIGMOD 1993; MIT/LCS/TR-534): storage that is
//
//   - managed automatically by a moving (copying) garbage collector,
//   - manipulated by atomic transactions with write-ahead logging and
//     repeating-history recovery, and
//   - accessed through a uniform storage model — one heap holding both
//     volatile and stable objects, where a volatile object becomes stable
//     (and durable) the moment a committing transaction makes it reachable
//     from a stable root.
//
// The headline properties, all reproduced and benchmarked here:
//
//   - the collector is incremental (bounded pauses via an Ellis/Li/Appel
//     page-protection read barrier, or a Baker per-reference barrier) and
//     atomic (its copy and scan steps are logged, so a crash at any instant
//     — including mid-collection — recovers, and the interrupted collection
//     simply resumes);
//   - recovery time is independent of heap size and shortened by cheap
//     fuzzy checkpoints;
//   - volatile objects pay none of the atomicity costs: the heap is divided
//     into a stable area (atomic incremental GC, logged) and a volatile
//     area (plain unlogged copying GC), with newly stable objects tracked
//     concurrently at commit and moved to the stable area at the next
//     volatile collection.
//
// The package runs entirely on simulated devices (an in-memory one-level
// store and a stable log with crash semantics), so crashes are
// deterministic and every recovery path is testable.
//
// # Quick start
//
//	h := stableheap.Open(stableheap.DefaultConfig())
//	tx := h.Begin()
//	obj, _ := tx.Alloc(1, 0, 1)    // 0 pointers, 1 data word
//	tx.SetData(obj, 0, 42)
//	tx.SetRoot(0, obj)             // reachable from a stable root:
//	tx.Commit()                    // …becomes stable at commit
//
//	disk, log := h.Crash()         // power failure
//	h2, _ := stableheap.Recover(stableheap.DefaultConfig(), disk, log)
//	tx2 := h2.Begin()
//	obj2, _ := tx2.Root(0)
//	v, _ := tx2.Data(obj2, 0)      // v == 42
package stableheap

import (
	"stableheap/internal/core"
	"stableheap/internal/gc"
	"stableheap/internal/obs"
	"stableheap/internal/storage"
	"stableheap/internal/word"
)

// Barrier selects the stable collector's read-barrier implementation.
type Barrier = gc.Barrier

// Read-barrier choices for Config.Barrier.
const (
	// Ellis uses page protection: unscanned to-space pages trap on first
	// access and are scanned whole (the paper's recommended design).
	Ellis = gc.Ellis
	// Baker checks every loaded pointer and transports from-space
	// targets (the §3.8 variant; higher mutator overhead, finer pauses).
	Baker = gc.Baker
	// NoBarrier runs collections to completion inside one pause
	// (stop-the-world; the paper's earlier-work baseline).
	NoBarrier = gc.NoBarrier
)

// Config sizes and parameterizes a heap. The zero value of any field takes
// a sensible default; DefaultConfig returns the paper's recommended
// configuration.
type Config = core.Config

// DefaultConfig returns a divided heap with the Ellis-style atomic
// incremental collector.
func DefaultConfig() Config { return core.DefaultConfig() }

// Ref is a reference to a heap object, registered with its transaction so
// the collectors keep it current as objects move (the paper's
// register/stack root set). A Ref is valid until its transaction finishes.
type Ref = core.Ref

// Addr is a virtual address in the simulated heap (exposed for inspection
// tools; application code should treat Refs as opaque).
type Addr = word.Addr

// Disk is the nonvolatile page store backing a heap. The built-in
// simulated implementation is storage.Disk; fault-injection wrappers
// (internal/faultfs) satisfy the same interface.
type Disk = storage.PageStore

// LogDevice is the stable log device. The built-in simulated
// implementation is storage.Log.
type LogDevice = storage.LogDevice

// Errors returned by heap operations.
var (
	// ErrConflict reports a lock conflict (deadlock victim or busy
	// object); abort the transaction and retry.
	ErrConflict = core.ErrConflict
	// ErrHeapFull reports that an allocation could not be satisfied even
	// after collection.
	ErrHeapFull = core.ErrHeapFull
	// ErrTxDone reports an operation on a finished transaction.
	ErrTxDone = core.ErrTxDone
)

// Heap is a stable heap instance over simulated devices.
type Heap struct {
	inner *core.Heap
}

// Open creates and formats a fresh stable heap. With Config.Dir set, the
// heap lives in real files under that directory instead of simulated
// devices (formatting a fresh directory, recovering an existing one);
// see OpenDir for the error-returning form.
func Open(cfg Config) *Heap {
	return &Heap{inner: core.Open(cfg)}
}

// OpenDir opens a file-backed stable heap at cfg.Dir: a fresh directory
// is formatted, an existing one is recovered.
func OpenDir(cfg Config) (*Heap, error) {
	inner, err := core.OpenDir(cfg)
	if err != nil {
		return nil, err
	}
	return &Heap{inner: inner}, nil
}

// RecoverDir rebuilds a file-backed stable heap from an existing
// directory — the process-restart analog of Recover. Torn log tails left
// by a kill are redelivered by the file layer and repaired by ordinary
// crash recovery.
func RecoverDir(cfg Config) (*Heap, error) {
	inner, err := core.RecoverDir(cfg)
	if err != nil {
		return nil, err
	}
	return &Heap{inner: inner}, nil
}

// Recover rebuilds a stable heap from the devices surviving a crash:
// repeating history from the last checkpoint, rolling back the
// transactions that were active at the crash, restoring (and later
// resuming) any interrupted collection, and evacuating recovered
// newly stable objects out of the volatile area. Work is bounded by the
// log written since the last checkpoint, never by heap size.
func Recover(cfg Config, disk Disk, log LogDevice) (*Heap, error) {
	inner, err := core.Recover(cfg, disk, log)
	if err != nil {
		return nil, err
	}
	return &Heap{inner: inner}, nil
}

// RecoverFromLog rebuilds the entire heap from the log alone — the
// total-media-failure case (§2.2.2): the disk is destroyed, and repeating
// history reconstructs every page from the first checkpoint onward. The
// log must be untruncated (the archive discipline); a truncated log is
// refused.
func RecoverFromLog(cfg Config, log LogDevice) (*Heap, error) {
	inner, err := core.RecoverFromLog(cfg, log)
	if err != nil {
		return nil, err
	}
	return &Heap{inner: inner}, nil
}

// Begin starts a transaction. Transactions are serializable (strict
// two-phase read/write locking) and total (commit makes every effect
// durable; abort removes every effect).
func (h *Heap) Begin() *Tx { return &Tx{inner: h.inner.Begin()} }

// Checkpoint takes a fuzzy checkpoint: one log record, no synchronous
// writes; it bounds the work of the next recovery.
func (h *Heap) Checkpoint() { h.inner.Checkpoint() }

// TruncateLog releases log space no longer needed by recovery.
func (h *Heap) TruncateLog() { h.inner.TruncateLog() }

// CollectVolatile runs one volatile-area collection, returning how many
// newly stable objects were moved into the stable area. Collections also
// run automatically when the volatile area fills.
func (h *Heap) CollectVolatile() (int, error) { return h.inner.CollectVolatile() }

// CollectStable runs a stable-area collection to completion.
func (h *Heap) CollectStable() { h.inner.CollectStable() }

// StartStableCollection flips the stable area without finishing the
// collection; subsequent mutator activity (and StepStable) drives it
// incrementally.
func (h *Heap) StartStableCollection() { h.inner.StartStableCollection() }

// StepStable advances an active stable collection by one quantum,
// reporting whether it is still active.
func (h *Heap) StepStable() bool { return h.inner.StepStable() }

// Crash simulates a system failure: main memory, the volatile log tail,
// the lock table and all active transactions are lost; the disk and the
// stable log survive and are returned for Recover. The Heap is dead
// afterwards.
func (h *Heap) Crash() (Disk, LogDevice) { return h.inner.Crash() }

// Close shuts down cleanly: aborts active transactions, completes any
// running collection, flushes, and takes a final forced checkpoint. The
// devices (from Devices) can then be Recovered instantly.
func (h *Heap) Close() { h.inner.Close() }

// Devices returns the heap's simulated devices.
func (h *Heap) Devices() (Disk, LogDevice) { return h.inner.Devices() }

// InDoubt lists prepared transactions restored by recovery, awaiting the
// coordinator's decision.
func (h *Heap) InDoubt() []uint64 {
	ids := h.inner.InDoubt()
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out
}

// ResolveCommit applies the coordinator's commit decision to an in-doubt
// transaction.
func (h *Heap) ResolveCommit(id uint64) error { return h.inner.ResolveCommit(word.TxID(id)) }

// ResolveAbort applies the coordinator's abort decision to an in-doubt
// transaction, rolling its effects back through any object moves.
func (h *Heap) ResolveAbort(id uint64) error { return h.inner.ResolveAbort(word.TxID(id)) }

// Stats summarizes subsystem activity since Open/Recover.
type Stats struct {
	TxBegun, TxCommitted, TxAborted int64
	LoggedUpdates, VolatileWrites   int64
	StableCollections               int
	CopiedObjects                   int64
	ReadBarrierTraps                int64
	VolatileCollections             int
	NewlyStableMoved                int64
	TrackedObjects                  int64
	LogAppends, LogForces           int64
	LogBytesAppended                int64
	CheckpointsTaken                int64
}

// Stats returns a snapshot of activity counters.
func (h *Heap) Stats() Stats {
	txs := h.inner.TxStats()
	gcs := h.inner.GCStats()
	vgs := h.inner.VGCStats()
	trk := h.inner.TrackerStats()
	dev := h.inner.Log().Device().Stats()
	mem := h.inner.Mem().Stats()
	cps := h.inner.CheckpointStats()
	return Stats{
		TxBegun: txs.Begun, TxCommitted: txs.Committed, TxAborted: txs.Aborted,
		LoggedUpdates: txs.Updates, VolatileWrites: txs.VolWrites,
		StableCollections: gcs.Collections, CopiedObjects: gcs.CopiedObjs,
		ReadBarrierTraps:    mem.Traps,
		VolatileCollections: vgs.Collections, NewlyStableMoved: vgs.MovedObjs,
		TrackedObjects: trk.Objects,
		LogAppends:     dev.Appends, LogForces: dev.Forces,
		LogBytesAppended: dev.BytesAppended,
		CheckpointsTaken: cps.Taken,
	}
}

// Metrics is the unified observability snapshot: every subsystem's
// counters and latency histograms (power-of-two buckets with
// p50/p90/p99/max) under one namespace. It marshals to JSON and renders
// Prometheus text exposition via WritePrometheus.
type Metrics = obs.Snapshot

// HistSnapshot is one latency histogram inside a Metrics snapshot.
type HistSnapshot = obs.HistSnapshot

// MetricsServer is a live exposition endpoint started by ServeMetrics.
type MetricsServer = obs.Server

// Metrics returns the unified observability snapshot. The histograms are
// always on — recording is a handful of atomic adds — so any run can
// report latency distributions without a measurement mode.
func (h *Heap) Metrics() Metrics { return h.inner.Metrics() }

// TraceJSON returns the run's trace in Chrome trace_event JSON form
// (loadable in about://tracing or ui.perfetto.dev). Tracing records only
// when Config.Trace is set; otherwise the document is empty but still
// loadable.
func (h *Heap) TraceJSON() []byte { return h.inner.TraceJSON() }

// ServeMetrics starts an HTTP endpoint (e.g. addr "localhost:8077")
// exposing /metrics (Prometheus text), /metrics.json (the snapshot as
// JSON) and /trace (Chrome trace JSON). Close the returned server when
// done.
func (h *Heap) ServeMetrics(addr string) (*MetricsServer, error) {
	return obs.Serve(addr, h.inner.Metrics, h.inner.Trace())
}

// Internal exposes the underlying core heap for the benchmark harness and
// inspection tools; applications should not need it.
func (h *Heap) Internal() *core.Heap { return h.inner }

// AdoptInternal wraps an already-recovered core heap in the public facade.
// Replication promotion (repl.Standby.Promote) produces a *core.Heap; this
// lets applications serve it through the same API as Open/Recover.
func AdoptInternal(inner *core.Heap) *Heap { return &Heap{inner: inner} }

// Tx is an open transaction.
type Tx struct {
	inner *core.Tx
}

// ID returns the transaction's identifier.
func (t *Tx) ID() uint64 { return uint64(t.inner.ID()) }

// Alloc creates an object with nptrs pointer fields (initialized nil) and
// ndata zero data words, tagged with the caller's typeID. New objects are
// volatile until a committing transaction makes them reachable from a
// stable root.
func (t *Tx) Alloc(typeID uint16, nptrs, ndata int) (*Ref, error) {
	return t.inner.Alloc(typeID, nptrs, ndata)
}

// Shape returns the referenced object's type id, pointer-field count and
// data-word count.
func (t *Tx) Shape(r *Ref) (typeID uint16, nptrs, ndata int, err error) {
	return t.inner.Shape(r)
}

// Ptr reads pointer field i, returning nil for a nil pointer.
func (t *Tx) Ptr(r *Ref, i int) (*Ref, error) { return t.inner.Ptr(r, i) }

// SetPtr stores val (possibly nil) into pointer field i.
func (t *Tx) SetPtr(r *Ref, i int, val *Ref) error { return t.inner.SetPtr(r, i, val) }

// Data reads data word j.
func (t *Tx) Data(r *Ref, j int) (uint64, error) { return t.inner.Data(r, j) }

// SetData stores v into data word j.
func (t *Tx) SetData(r *Ref, j int, v uint64) error { return t.inner.SetData(r, j, v) }

// AddData atomically adds delta (wrapping) to data word j using a logical
// log record: no before-image, and abort compensates with the negated
// delta — the paper's "logical undo" optimization (§2.2.4). Ideal for
// counters and balances.
func (t *Tx) AddData(r *Ref, j int, delta uint64) error { return t.inner.AddData(r, j, delta) }

// Root reads stable root slot i (nil if unset). Stable roots are the
// programmer-designated global roots whose reachable closure survives
// crashes.
func (t *Tx) Root(i int) (*Ref, error) { return t.inner.Root(i) }

// SetRoot stores val into stable root slot i. Any volatile objects made
// reachable by this store become stable when the transaction commits.
func (t *Tx) SetRoot(i int, val *Ref) error { return t.inner.SetRoot(i, val) }

// VolRoot reads volatile root slot i. Volatile roots are global but do not
// survive crashes (e.g. caches, session state).
func (t *Tx) VolRoot(i int) (*Ref, error) { return t.inner.VolRoot(i) }

// SetVolRoot stores val into volatile root slot i.
func (t *Tx) SetVolRoot(i int, val *Ref) error { return t.inner.SetVolRoot(i, val) }

// SetDataBytes stores b into consecutive data words starting at word j
// (padded with zeros to a word boundary); the object needs
// (len(b)+7)/8 data words from j. A convenience for string-ish payloads.
func (t *Tx) SetDataBytes(r *Ref, j int, b []byte) error {
	for off := 0; off < len(b); off += 8 {
		var w [8]byte
		copy(w[:], b[off:])
		var v uint64
		for k := 7; k >= 0; k-- {
			v = v<<8 | uint64(w[k])
		}
		if err := t.SetData(r, j+off/8, v); err != nil {
			return err
		}
	}
	return nil
}

// DataBytes reads n bytes of data words starting at word j (the inverse of
// SetDataBytes).
func (t *Tx) DataBytes(r *Ref, j, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for off := 0; off < n; off += 8 {
		v, err := t.Data(r, j+off/8)
		if err != nil {
			return nil, err
		}
		for k := 0; k < 8 && off+k < n; k++ {
			out = append(out, byte(v>>(8*k)))
		}
	}
	return out, nil
}

// Commit tracks and stabilizes any volatile objects the transaction made
// reachable from stable roots (logging their initial values), then writes
// and forces the commit record. On ErrConflict the transaction has been
// aborted.
func (t *Tx) Commit() error { return t.inner.Commit() }

// Prepare makes the transaction's effects durable without deciding its
// fate — the participant side of two-phase commit. Locks stay held; if the
// system crashes, the transaction is restored in-doubt at recovery and
// resolved with Heap.ResolveCommit / Heap.ResolveAbort. After Prepare,
// only Commit or Abort are legal.
func (t *Tx) Prepare() error { return t.inner.Prepare() }

// Abort rolls the transaction back: logged updates are undone in place
// with compensation records; unlogged volatile writes are undone from
// memory.
func (t *Tx) Abort() error { return t.inner.Abort() }

// Err returns the transaction's sticky error (set by a conflict), if any.
func (t *Tx) Err() error { return t.inner.Err() }
