package stableheap_test

import (
	"testing"

	"stableheap"
)

// TestClusterFacade drives the partitioned multi-heap through the public
// API: single-partition and cross-partition commits, routing stability,
// and the cross-partition pointer guard.
func TestClusterFacade(t *testing.T) {
	cfg := stableheap.ClusterConfig{Partitions: 4, Part: stableheap.DefaultConfig()}
	cl, err := stableheap.OpenCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Partitions() != 4 {
		t.Fatalf("partitions = %d, want 4", cl.Partitions())
	}

	// Two slots on distinct partitions.
	slotA, slotB := 0, -1
	for s := 1; s < 32; s++ {
		if cl.PartitionOf(s) != cl.PartitionOf(slotA) {
			slotB = s
			break
		}
	}
	if slotB < 0 {
		t.Fatal("routing put every slot on one partition")
	}

	for _, s := range []int{slotA, slotB} {
		tx := cl.Begin()
		ref, err := tx.AllocFor(s, 1, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.SetData(ref, 0, 100); err != nil {
			t.Fatal(err)
		}
		if err := tx.SetRoot(s, ref); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Cross-partition transfer: one atomic commit over two partitions.
	tx := cl.Begin()
	a, err := tx.Root(slotA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tx.Root(slotB)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetData(a, 0, 70); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetData(b, 0, 130); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetPtr(a, 0, b); err != stableheap.ErrCrossPartition {
		t.Fatalf("cross-partition pointer: err = %v, want ErrCrossPartition", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	check := cl.Begin()
	defer check.Abort()
	for s, want := range map[int]uint64{slotA: 70, slotB: 130} {
		ref, err := check.Root(s)
		if err != nil {
			t.Fatal(err)
		}
		v, err := check.Data(ref, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("slot %d = %d, want %d", s, v, want)
		}
	}
	if got := cl.Metrics().Counter("shard_2pc_commits_total"); got != 1 {
		t.Fatalf("2pc commits = %d, want 1", got)
	}
	if doubt := cl.InDoubt(); len(doubt) != 0 {
		t.Fatalf("in-doubt branches on a live cluster: %v", doubt)
	}
}
