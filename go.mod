module stableheap

go 1.22
