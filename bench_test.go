// Benchmarks: one kernel per experiment of DESIGN.md §5 (E1–E11; E12 is a
// correctness sweep and lives in internal/crashtest's tests). Each
// benchmark exercises the hot path its table measures; run
// `go run ./cmd/shbench all` for the full formatted tables.
package stableheap_test

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"stableheap"
	"stableheap/internal/workload"
)

func benchCfg(stableWords, volWords int) stableheap.Config {
	return stableheap.Config{
		PageSize:      1024,
		StableWords:   stableWords,
		VolatileWords: volWords,
		Divided:       true,
		Barrier:       stableheap.Ellis,
		Incremental:   true,
	}
}

// openWithChain returns a heap with an n-node committed chain under root 0,
// already moved into the stable area.
func openWithChain(b *testing.B, cfg stableheap.Config, n int) *stableheap.Heap {
	b.Helper()
	h := stableheap.Open(cfg)
	// Build in committed batches so the volatile area never has to hold
	// the whole chain at once; each batch prepends to the chain under
	// root 0 and is evacuated to the stable area.
	for built := 0; built < n; {
		batch := n - built
		if batch > 1024 {
			batch = 1024
		}
		tx := h.Begin()
		head, err := tx.Root(0)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < batch; i++ {
			node, err := tx.Alloc(1, 1, 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := tx.SetData(node, 0, uint64(built+i)); err != nil {
				b.Fatal(err)
			}
			if err := tx.SetPtr(node, 0, head); err != nil {
				b.Fatal(err)
			}
			head = node
		}
		if err := tx.SetRoot(0, head); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		if _, err := h.CollectVolatile(); err != nil {
			b.Fatal(err)
		}
		built += batch
	}
	return h
}

// --- E1: low-level recoverable actions ---------------------------------

func BenchmarkE1Read(b *testing.B) {
	h := openWithChain(b, benchCfg(32*1024, 16*1024), 1)
	tx := h.Begin()
	defer tx.Abort()
	r, _ := tx.Root(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.Data(r, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1LoggedUpdate(b *testing.B) {
	h := openWithChain(b, benchCfg(32*1024, 16*1024), 1)
	tx := h.Begin()
	defer tx.Abort()
	r, _ := tx.Root(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.SetData(r, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1VolatileWrite(b *testing.B) {
	h := stableheap.Open(benchCfg(32*1024, 16*1024))
	tx := h.Begin()
	defer tx.Abort()
	v, err := tx.Alloc(1, 0, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.SetData(v, i%4, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Alloc(b *testing.B) {
	h := stableheap.Open(benchCfg(32*1024, 256*1024))
	// Restart the transaction periodically so allocated objects become
	// garbage (handles pin everything a live transaction allocated) and
	// the volatile collector can reclaim them.
	tx := h.Begin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%8192 == 0 {
			b.StopTimer()
			if err := tx.Abort(); err != nil {
				b.Fatal(err)
			}
			tx = h.Begin()
			b.StartTimer()
		}
		if _, err := tx.Alloc(1, 0, 3); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tx.Abort()
}

func BenchmarkE1Commit(b *testing.B) {
	h := openWithChain(b, benchCfg(32*1024, 16*1024), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := h.Begin()
		r, _ := tx.Root(0)
		if err := tx.SetData(r, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2/E3: collections -------------------------------------------------

func benchCollection(b *testing.B, barrier stableheap.Barrier, incremental bool, live int) {
	cfg := benchCfg(live*4+16*1024, 16*1024)
	cfg.Barrier = barrier
	cfg.Incremental = incremental
	h := openWithChain(b, cfg, live)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if incremental {
			h.StartStableCollection()
			for h.StepStable() {
			}
		} else {
			h.CollectStable()
		}
	}
	b.ReportMetric(float64(h.Internal().GCStats().CopiedObjs)/float64(b.N), "objs/collection")
}

func BenchmarkE2CollectionEllis(b *testing.B) { benchCollection(b, stableheap.Ellis, true, 2048) }
func BenchmarkE2CollectionBaker(b *testing.B) { benchCollection(b, stableheap.Baker, true, 2048) }
func BenchmarkE3StopTheWorld(b *testing.B)    { benchCollection(b, stableheap.NoBarrier, false, 2048) }

// --- E4/E5/E7: recovery ---------------------------------------------------

// parallelWorkers picks the redo shard count for the parallel recovery
// variants: all cores, at least 2 (so the parallel engine actually engages
// on single-core runners), capped at the auto-pick ceiling of 8.
func parallelWorkers() int {
	w := runtime.NumCPU()
	if w < 2 {
		w = 2
	}
	if w > 8 {
		w = 8
	}
	return w
}

func benchRecovery(b *testing.B, live, tail int, midGC bool, workers int) {
	cfg := benchCfg(live*4+16*1024, 16*1024)
	cfg.RecoveryWorkers = workers
	h := openWithChain(b, cfg, live)
	h.Checkpoint()
	h.Checkpoint()
	for i := 0; i < tail; i++ {
		tx := h.Begin()
		r, _ := tx.Root(0)
		if err := tx.SetData(r, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	if midGC {
		h.StartStableCollection()
		h.StepStable()
		// Force the collector records out via a commit.
		tx := h.Begin()
		r, _ := tx.Root(0)
		tx.SetData(r, 0, 1)
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	disk, logDev := h.Crash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d2, l2 := disk.Clone(), logDev.Clone()
		b.StartTimer()
		if _, err := stableheap.Recover(cfg, d2, l2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4RecoverySmallHeap(b *testing.B) { benchRecovery(b, 512, 200, false, 1) }
func BenchmarkE4RecoveryLargeHeap(b *testing.B) { benchRecovery(b, 8192, 200, false, 1) }
func BenchmarkE5RecoveryLongTail(b *testing.B)  { benchRecovery(b, 2048, 2000, false, 1) }
func BenchmarkE7RecoveryMidGC(b *testing.B)     { benchRecovery(b, 2048, 200, true, 1) }

// Parallel variants of the same crash images, replayed with the
// page-partitioned redo engine (DESIGN.md "Parallel recovery").
func BenchmarkE4RecoverySmallHeapParallel(b *testing.B) {
	benchRecovery(b, 512, 200, false, parallelWorkers())
}
func BenchmarkE4RecoveryLargeHeapParallel(b *testing.B) {
	benchRecovery(b, 8192, 200, false, parallelWorkers())
}
func BenchmarkE5RecoveryLongTailParallel(b *testing.B) {
	benchRecovery(b, 2048, 2000, false, parallelWorkers())
}
func BenchmarkE7RecoveryMidGCParallel(b *testing.B) {
	benchRecovery(b, 2048, 200, true, parallelWorkers())
}

// --- E6/E9: log volume ----------------------------------------------------

func BenchmarkE6CollectionLogBytes(b *testing.B) {
	cfg := benchCfg(32*1024, 16*1024)
	h := openWithChain(b, cfg, 2048)
	before := h.Stats().LogBytesAppended
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.CollectStable()
	}
	b.ReportMetric(float64(h.Stats().LogBytesAppended-before)/float64(b.N), "log-bytes/collection")
}

func benchChurn(b *testing.B, divided bool) {
	cfg := benchCfg(32*1024, 32*1024)
	cfg.Divided = divided
	h := stableheap.Open(cfg)
	before := h.Stats().LogBytesAppended
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := h.Begin()
		for j := 0; j < 10; j++ {
			n, err := tx.Alloc(1, 0, 6)
			if err != nil {
				b.Fatal(err)
			}
			if err := tx.SetData(n, 0, uint64(j)); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(h.Stats().LogBytesAppended-before)/float64(b.N), "log-bytes/tx")
}

func BenchmarkE9ChurnDivided(b *testing.B)   { benchChurn(b, true) }
func BenchmarkE9ChurnAllStable(b *testing.B) { benchChurn(b, false) }

// --- E8: stability tracking ------------------------------------------------

func benchTracking(b *testing.B, closure int) {
	h := stableheap.Open(benchCfg(512*1024, 256*1024))
	slot := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tx := h.Begin()
		var head *stableheap.Ref
		for j := 0; j < closure; j++ {
			n, err := tx.Alloc(1, 1, 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := tx.SetPtr(n, 0, head); err != nil {
				b.Fatal(err)
			}
			head = n
		}
		b.StartTimer()
		// The timed region: publishing + commit-time tracking.
		if err := tx.SetRoot(slot%8, head); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		slot++
		if slot%32 == 0 {
			b.StopTimer()
			if _, err := h.CollectVolatile(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(closure), "objs/commit")
}

func BenchmarkE8Tracking10(b *testing.B)  { benchTracking(b, 10) }
func BenchmarkE8Tracking100(b *testing.B) { benchTracking(b, 100) }

// --- E10: read barriers -----------------------------------------------------

func benchWalkDuringGC(b *testing.B, barrier stableheap.Barrier) {
	cfg := benchCfg(64*1024, 16*1024)
	cfg.Barrier = barrier
	h := openWithChain(b, cfg, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !h.Internal().StableCollector().Active() {
			h.StartStableCollection()
		}
		tx := h.Begin()
		node, _ := tx.Root(0)
		for node != nil {
			if _, err := tx.Data(node, 0); err != nil {
				b.Fatal(err)
			}
			var err error
			if node, err = tx.Ptr(node, 0); err != nil {
				b.Fatal(err)
			}
		}
		tx.Abort()
	}
	for h.StepStable() {
	}
	b.ReportMetric(float64(h.Stats().ReadBarrierTraps)/float64(b.N), "traps/walk")
}

func BenchmarkE10WalkEllis(b *testing.B) { benchWalkDuringGC(b, stableheap.Ellis) }
func BenchmarkE10WalkBaker(b *testing.B) { benchWalkDuringGC(b, stableheap.Baker) }

// --- E11: workload throughput -----------------------------------------------

func BenchmarkE11BankTransfer(b *testing.B) {
	h := stableheap.Open(benchCfg(32*1024, 8*1024))
	bank, err := workload.NewBank(h, 0, 64, 8, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from, to := rng.Intn(64), rng.Intn(64)
		if from == to {
			continue
		}
		if err := bank.Transfer(from, to, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11OO7Update(b *testing.B) {
	h := stableheap.Open(benchCfg(32*1024, 8*1024))
	rng := rand.New(rand.NewSource(2))
	db, err := workload.BuildOO7(h, 0, workload.DefaultOO7(), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.UpdateT2(rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11CADSession(b *testing.B) {
	h := stableheap.Open(benchCfg(32*1024, 8*1024))
	rng := rand.New(rand.NewSource(3))
	ct, err := workload.BuildCAD(h, 0, workload.DefaultCAD(), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ct.EditSession(rng, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// Example-style sanity: the benchmarks must leave consistent heaps.
func TestBenchmarkHelpersConsistent(t *testing.T) {
	h := stableheap.Open(benchCfg(32*1024, 16*1024))
	bank, err := workload.NewBank(h, 0, 16, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	total, err := bank.Total()
	if err != nil || total != 1600 {
		t.Fatalf("total=%d err=%v", total, err)
	}
	_ = fmt.Sprintf
}

// --- E13: group commit --------------------------------------------------

func BenchmarkE13GroupCommit(b *testing.B) {
	cfg := benchCfg(64*1024, 32*1024)
	cfg.GroupCommitWindow = 200 * time.Microsecond
	cfg.GroupCommitBatch = 8
	cfg.LockWait = 100 * time.Millisecond
	h := stableheap.Open(cfg)
	setup := h.Begin()
	const workers = 8
	for w := 0; w < workers; w++ {
		n, err := setup.Alloc(1, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := setup.SetRoot(w, n); err != nil {
			b.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		b.Fatal(err)
	}
	h.CollectVolatile()
	forces0 := h.Stats().LogForces
	commits0 := h.Stats().TxCommitted
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tx := h.Begin()
				n, err := tx.Root(w)
				if err != nil {
					tx.Abort()
					continue
				}
				if err := tx.SetData(n, 0, uint64(i)); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil && !errors.Is(err, stableheap.ErrConflict) {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	commits := h.Stats().TxCommitted - commits0
	forces := h.Stats().LogForces - forces0
	if commits > 0 {
		b.ReportMetric(float64(forces)/float64(commits), "forces/commit")
	}
	h.Close()
}

// --- E14: content-carrying copy-record ablation ---------------------------

func BenchmarkE14CopyContentsCollection(b *testing.B) {
	cfg := benchCfg(32*1024, 16*1024)
	cfg.CopyContents = true
	h := openWithChain(b, cfg, 2048)
	before := h.Stats().LogBytesAppended
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.CollectStable()
	}
	b.ReportMetric(float64(h.Stats().LogBytesAppended-before)/float64(b.N), "log-bytes/collection")
}

// --- E15: checkpoint + truncation cycle ------------------------------------

func BenchmarkE15CheckpointTruncate(b *testing.B) {
	cfg := benchCfg(32*1024, 16*1024)
	cfg.LogSegBytes = 16 * 1024
	h := openWithChain(b, cfg, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := h.Begin()
		r, _ := tx.Root(0)
		if err := tx.SetData(r, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		h.Checkpoint()
		h.TruncateLog()
	}
	dev := h.Internal().Log().Device()
	b.ReportMetric(float64(dev.RetainedBytes()), "retained-log-bytes")
}

// --- E18: concurrent commit path ----------------------------------------

// BenchmarkE18ParallelCommits drives the commit path from GOMAXPROCS
// goroutines over disjoint counters — the sharded-latch kernel behind
// experiment E18. `shbench e18` measures the full scaling curve over a
// slow-force log; this kernel measures the raw concurrent commit rate on
// the real (instant-force) simulated log.
func BenchmarkE18ParallelCommits(b *testing.B) {
	cfg := benchCfg(64*1024, 16*1024)
	cfg.GroupCommitWindow = 50 * time.Microsecond
	h := stableheap.Open(cfg)
	const counters = 16
	tx := h.Begin()
	for i := 0; i < counters; i++ {
		c, err := tx.Alloc(1, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.SetRoot(i, c); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	if _, err := h.CollectVolatile(); err != nil {
		b.Fatal(err)
	}
	var nextSlot int32
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		slot := int(nextSlot) % counters
		nextSlot++
		mu.Unlock()
		for pb.Next() {
			tr := h.Begin()
			c, err := tr.Root(slot)
			if err != nil {
				panic(err)
			}
			v, err := tr.Data(c, 0)
			if err != nil {
				panic(err)
			}
			if err := tr.SetData(c, 0, v+1); err != nil {
				panic(err)
			}
			if err := tr.Commit(); err != nil {
				panic(err)
			}
		}
	})
}
