package stableheap

import (
	"stableheap/internal/obs"
	"stableheap/internal/shard"
	"stableheap/internal/word"
)

// ClusterConfig sizes a partitioned multi-heap: Partitions independent
// stable heaps (each with its own log, checkpointer and collectors)
// behind one transactional API. Part configures every partition; Dir, if
// set, roots the cluster in real files (one subdirectory per partition
// plus the coordinator's decision log).
type ClusterConfig = shard.Config

// ClusterRef is a partition-qualified object reference.
type ClusterRef = shard.Ref

// ClusterTx is a transaction spanning one or more partitions. Operations
// mirror Tx; a commit touching a single partition behaves exactly like a
// single-heap commit, while one spanning several runs presumed-abort
// two-phase commit through the cluster's coordinator, so the transaction
// is atomic across partitions even through a crash between the prepare
// and commit phases.
type ClusterTx = shard.Tx

// ErrCrossPartition rejects a pointer or root assignment that would span
// partitions: object graphs are partition-local, and cross-partition
// structure lives in the root table via the stable routing hash.
var ErrCrossPartition = shard.ErrCrossPartition

// Cluster is a partitioned stable heap: root slots are routed to
// partitions by a stable hash (PartitionOf), transactions span partitions
// transparently, and recovery resolves in-doubt two-phase branches
// against the coordinator's durable decision log.
type Cluster struct {
	inner *shard.Cluster
}

// OpenCluster creates a cluster: in-memory when cfg.Dir is empty,
// file-backed otherwise (formatting a fresh directory tree, recovering an
// existing one — including the in-doubt resolution pass after a kill).
func OpenCluster(cfg ClusterConfig) (*Cluster, error) {
	cl, err := shard.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: cl}, nil
}

// Begin starts a cluster transaction.
func (c *Cluster) Begin() *ClusterTx { return c.inner.Begin() }

// PartitionOf returns the home partition of a root slot. The routing hash
// is stable across runs and versions: object placement is durable.
func (c *Cluster) PartitionOf(slot int) int { return c.inner.PartitionOf(slot) }

// Partitions returns the partition count.
func (c *Cluster) Partitions() int { return c.inner.Partitions() }

// Checkpoint checkpoints every partition.
func (c *Cluster) Checkpoint() { c.inner.Checkpoint() }

// CollectVolatile runs a volatile collection on every partition.
func (c *Cluster) CollectVolatile() (int, error) { return c.inner.CollectVolatile() }

// CollectStable runs a stable collection on every partition.
func (c *Cluster) CollectStable() { c.inner.CollectStable() }

// Metrics returns the cluster-wide snapshot: heap counters summed and
// histograms merged across partitions, plus per-partition and
// 2PC-protocol counters.
func (c *Cluster) Metrics() obs.Snapshot { return c.inner.Metrics() }

// InDoubt lists prepared-but-undecided transaction branches per
// partition; empty except between a crash and the resolution pass, which
// every recovery entry point runs.
func (c *Cluster) InDoubt() map[int][]word.TxID { return c.inner.InDoubt() }

// Close shuts the cluster down cleanly.
func (c *Cluster) Close() { c.inner.Close() }
